// table1_smt.cpp — Experiment E5: Table 1, row 3.
//
// Time-predictable simultaneous multithreading (Barre et al. [2]; Mische et
// al. [16]).  Property: execution time of tasks in the real-time thread.
// Uncertainty: execution context (the other threads).  Quality measure:
// variability in execution times — zero under the RT-priority policy.

#include "bench_common.h"
#include "core/measures.h"
#include "core/report.h"
#include "isa/ast.h"
#include "isa/exec.h"
#include "isa/workloads.h"
#include "pipeline/smt.h"

namespace {

using namespace pred;
using pipeline::Cycles;

void runRow() {
  bench::printHeader("Table 1, row 3", "time-predictable SMT");

  core::PredictabilityInstance inst;
  inst.approach = "Time-predictable simultaneous multithreading";
  inst.hardwareUnit = "SMT processor";
  inst.property = core::Property::ExecutionTime;
  inst.uncertainties = {core::Uncertainty::ExecutionContext};
  inst.measure = core::MeasureKind::Range;
  inst.citation = "[2,16]";
  bench::printInstance(inst);

  const auto rtProg = isa::ast::compileBranchy(isa::workloads::sumLoop(24));
  const auto bg1 = isa::ast::compileBranchy(isa::workloads::matMul(4));
  const auto bg2 = isa::ast::compileBranchy(isa::workloads::bubbleSort(8));
  const auto bg3 = isa::ast::compileBranchy(isa::workloads::divKernel(12));
  const auto tRt = isa::FunctionalCore::run(rtProg, isa::Input{}).trace;
  const auto t1 = isa::FunctionalCore::run(bg1, isa::Input{}).trace;
  const auto t2 = isa::FunctionalCore::run(bg2, isa::Input{}).trace;
  const auto t3 = isa::FunctionalCore::run(bg3, isa::Input{}).trace;

  const std::vector<std::pair<std::string,
                              std::vector<const isa::Trace*>>> contexts = {
      {"RT alone", {&tRt}},
      {"RT + matMul", {&tRt, &t1}},
      {"RT + 2 threads", {&tRt, &t1, &t2}},
      {"RT + 3 threads", {&tRt, &t1, &t2, &t3}},
  };

  core::TextTable t({"execution context", "RT time (rt-priority)",
                     "RT time (round-robin)"});
  std::vector<Cycles> prio, rr;
  for (const auto& [name, threads] : contexts) {
    pipeline::SmtConfig cp;
    cp.policy = pipeline::SmtPolicy::RtPriority;
    pipeline::SmtConfig cr;
    cr.policy = pipeline::SmtPolicy::RoundRobin;
    const auto dp = pipeline::SmtPipeline(cp).run(threads);
    const auto dr = pipeline::SmtPipeline(cr).run(threads);
    prio.push_back(dp[0]);
    rr.push_back(dr[0]);
    t.addRow({name, std::to_string(dp[0]), std::to_string(dr[0])});
  }
  std::printf("%s", t.render().c_str());

  const auto sp = core::computeStats(prio);
  const auto sr = core::computeStats(rr);
  bench::printKV("RT-thread variability (rt-priority)",
                 core::fmt(sp.range(), 0) + " cycles");
  bench::printKV("RT-thread variability (round-robin)",
                 core::fmt(sr.range(), 0) + " cycles");
  std::printf(
      "shape reproduced: with the real-time thread prioritized, its\n"
      "execution time is context-independent (zero interference); under\n"
      "fair round-robin it degrades as co-runner threads are added.\n");
}

void BM_SmtRun(benchmark::State& state) {
  const auto rtProg = isa::ast::compileBranchy(isa::workloads::sumLoop(24));
  const auto bg = isa::ast::compileBranchy(isa::workloads::matMul(4));
  const auto tRt = isa::FunctionalCore::run(rtProg, isa::Input{}).trace;
  const auto tBg = isa::FunctionalCore::run(bg, isa::Input{}).trace;
  pipeline::SmtConfig cfg;
  cfg.policy = pipeline::SmtPolicy::RtPriority;
  pipeline::SmtPipeline smt(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smt.run({&tRt, &tBg, &tBg, &tBg}));
  }
}
BENCHMARK(BM_SmtRun);

}  // namespace

int main(int argc, char** argv) {
  runRow();
  return pred::bench::runBenchmarks(argc, argv);
}
