// table1_smt.cpp — Experiment E5: Table 1, row 3.
//
// Time-predictable simultaneous multithreading (Barre et al. [2]; Mische et
// al. [16]).  Property: execution time of tasks in the real-time thread.
// Uncertainty: execution context (the other threads).  Quality measure:
// variability in execution times — zero under the RT-priority policy.
//
// Ported onto the experiment engine: the execution contexts ARE the
// hardware-state axis Q of the "smt-rr" / "smt-rtprio" platforms, so the
// row's variability claim is simply the state-induced predictability
// (Def. 4) of the resulting timing matrix — SIPr = 1 under RT priority,
// SIPr < 1 under round-robin.

#include "bench_common.h"
#include "core/definitions.h"
#include "core/measures.h"
#include "core/report.h"
#include "exp/engine.h"
#include "exp/platform.h"
#include "isa/ast.h"
#include "isa/workloads.h"

namespace {

using namespace pred;
using pipeline::Cycles;

void runRow() {
  bench::printHeader("Table 1, row 3", "time-predictable SMT");

  core::PredictabilityInstance inst;
  inst.approach = "Time-predictable simultaneous multithreading";
  inst.hardwareUnit = "SMT processor";
  inst.property = core::Property::ExecutionTime;
  inst.uncertainties = {core::Uncertainty::ExecutionContext};
  inst.measure = core::MeasureKind::Range;
  inst.citation = "[2,16]";
  bench::printInstance(inst);

  const auto rtProg = isa::ast::compileBranchy(isa::workloads::sumLoop(24));
  const std::vector<isa::Input> inputs = {isa::Input{}};

  exp::PlatformOptions opts;
  opts.numStates = 4;  // contexts: RT alone, +1, +2, +3 co-runners
  const auto& registry = exp::PlatformRegistry::instance();
  const auto prioModel = registry.make("smt-rtprio", rtProg, opts);
  const auto rrModel = registry.make("smt-rr", rtProg, opts);

  exp::ExperimentEngine engine;
  const auto mPrio = engine.computeMatrix(*prioModel, rtProg, inputs);
  const auto mRr = engine.computeMatrix(*rrModel, rtProg, inputs);

  core::TextTable t({"execution context", "RT time (rt-priority)",
                     "RT time (round-robin)"});
  std::vector<Cycles> prio, rr;
  for (std::size_t q = 0; q < mPrio.numStates(); ++q) {
    prio.push_back(mPrio.at(q, 0));
    rr.push_back(mRr.at(q, 0));
    t.addRow({prioModel->stateLabel(q), std::to_string(mPrio.at(q, 0)),
              std::to_string(mRr.at(q, 0))});
  }
  std::printf("%s", t.render().c_str());

  const auto sp = core::computeStats(prio);
  const auto sr = core::computeStats(rr);
  bench::printKV("RT-thread variability (rt-priority)",
                 core::fmt(sp.range(), 0) + " cycles");
  bench::printKV("RT-thread variability (round-robin)",
                 core::fmt(sr.range(), 0) + " cycles");
  bench::printKV("SIPr over contexts (rt-priority)",
                 core::fmt(core::stateInducedPredictability(mPrio).value, 4));
  bench::printKV("SIPr over contexts (round-robin)",
                 core::fmt(core::stateInducedPredictability(mRr).value, 4));
  std::printf(
      "shape reproduced: with the real-time thread prioritized, its\n"
      "execution time is context-independent (zero interference); under\n"
      "fair round-robin it degrades as co-runner threads are added.\n");
}

void BM_SmtMatrix(benchmark::State& state) {
  const auto rtProg = isa::ast::compileBranchy(isa::workloads::sumLoop(24));
  const std::vector<isa::Input> inputs = {isa::Input{}};
  exp::PlatformOptions opts;
  opts.numStates = 8;
  const auto model =
      exp::PlatformRegistry::instance().make("smt-rtprio", rtProg, opts);
  exp::ExperimentEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.computeMatrix(*model, rtProg, inputs).wcet());
  }
}
BENCHMARK(BM_SmtMatrix);

}  // namespace

int main(int argc, char** argv) {
  runRow();
  return pred::bench::runBenchmarks(argc, argv);
}
