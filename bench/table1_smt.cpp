// table1_smt.cpp — Experiment E5: Table 1, row 3.
//
// Time-predictable simultaneous multithreading (Barre et al. [2]; Mische et
// al. [16]).  Property: execution time of tasks in the real-time thread.
// Uncertainty: execution context (the other threads).  Quality measure:
// variability in execution times — zero under the RT-priority policy.
//
// On the study API the whole row is one query from the catalog: the
// execution contexts ARE the hardware-state axis Q of the "smt-rr" /
// "smt-rtprio" platforms, so the row's variability claim is simply the
// state-induced predictability (Def. 4) of the resulting timing matrix —
// SIPr = 1 under RT priority, SIPr < 1 under round-robin.

#include "bench_common.h"
#include "core/measures.h"
#include "core/report.h"
#include "study/catalog.h"
#include "study/query.h"

namespace {

using namespace pred;
using core::Cycles;

void runRow() {
  bench::printHeader("Table 1, row 3", "time-predictable SMT");

  const auto& inst = study::catalog::row("simultaneous multithreading");
  bench::printInstance(inst);

  exp::ExperimentEngine engine;
  // contexts: RT alone, +1, +2, +3 co-runners
  const auto report = study::compile(inst.spec).keepMatrix().runAll(engine);
  const auto& prio = report.findings[0];  // smt-rtprio
  const auto& rr = report.findings[1];    // smt-rr

  core::TextTable t({"execution context", "RT time (rt-priority)",
                     "RT time (round-robin)"});
  std::vector<Cycles> prioTimes, rrTimes;
  for (std::size_t q = 0; q < prio.numStates; ++q) {
    prioTimes.push_back(prio.matrix->at(q, 0));
    rrTimes.push_back(rr.matrix->at(q, 0));
    t.addRow({prio.stateLabels[q], std::to_string(prio.matrix->at(q, 0)),
              std::to_string(rr.matrix->at(q, 0))});
  }
  std::printf("%s", t.render().c_str());

  const auto sp = core::computeStats(prioTimes);
  const auto sr = core::computeStats(rrTimes);
  bench::printKV("RT-thread variability (rt-priority)",
                 core::fmt(sp.range(), 0) + " cycles");
  bench::printKV("RT-thread variability (round-robin)",
                 core::fmt(sr.range(), 0) + " cycles");
  bench::printKV("SIPr over contexts (rt-priority)",
                 core::fmt(prio.sipr.value, 4));
  bench::printKV("SIPr over contexts (round-robin)",
                 core::fmt(rr.sipr.value, 4));
  std::printf(
      "shape reproduced: with the real-time thread prioritized, its\n"
      "execution time is context-independent (zero interference); under\n"
      "fair round-robin it degrades as co-runner threads are added.\n");
}

void BM_SmtMatrix(benchmark::State& state) {
  exp::PlatformOptions opts;
  opts.numStates = 8;
  const auto query = study::Query()
                         .workload("sum-24")
                         .platform("smt-rtprio", opts)
                         .measures({study::Measure::SIPr});
  exp::ExperimentEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.run(engine).wcet);
  }
}
BENCHMARK(BM_SmtMatrix);

}  // namespace

int main(int argc, char** argv) {
  runRow();
  return pred::bench::runBenchmarks(argc, argv);
}
