// table2_split_caches.cpp — Experiment E11: Table 2, row 2.
//
// Split caches (Schoeberl, Puffitsch, Huber [24]).  Property: number of
// data cache hits.  Uncertainty: (among others) addresses of data accesses.
// Quality measure: percentage of accesses that can be statically
// classified — higher with the split design because unknown heap addresses
// only affect the (fully associative) heap cache.

#include "bench_common.h"
#include "cache/mustmay.h"
#include "core/report.h"
#include "isa/ast.h"
#include "isa/cfg.h"
#include "isa/exec.h"
#include "isa/workloads.h"
#include "study/catalog.h"

namespace {

using namespace pred;

void runRow() {
  bench::printHeader("Table 2, row 2", "split data caches");

  // The quality measure is a static-classification fraction, not a Q x I
  // timing query — the catalog row is declarative (workload-only).
  bench::printInstance(study::catalog::row("Split caches"));

  core::TextTable t({"workload", "unified: % classified", "split: % classified",
                     "unified: always-hit", "split: always-hit"});

  struct W {
    std::string name;
    isa::ast::AstProgram ast;
  };
  const W workloads[] = {
      {"heapMix(8)", isa::workloads::heapMix(8)},
      {"heapMix(16)", isa::workloads::heapMix(16)},
      {"sumLoop(8) (no heap)", isa::workloads::sumLoop(8)},
  };

  for (const auto& w : workloads) {
    const auto prog = isa::ast::compileBranchy(w.ast);
    isa::Cfg cfg(prog);
    const auto oracle = cache::syntacticOracle(prog);

    const auto unified = cache::classifyDataAccesses(
        cfg, cache::CacheGeometry{1, 16, 1}, oracle);
    cache::SplitCacheConfig split;
    split.staticGeom = cache::CacheGeometry{1, 16, 1};
    split.stackGeom = cache::CacheGeometry{1, 4, 1};
    split.heapGeom = cache::CacheGeometry{1, 1, 8};
    const auto splitCls =
        cache::classifyDataAccessesSplit(cfg, split, prog.layout, oracle);

    t.addRow({w.name, core::fmt(100 * unified.classifiedFraction(), 1) + "%",
              core::fmt(100 * splitCls.classifiedFraction(), 1) + "%",
              std::to_string(unified.count(cache::AccessClass::AlwaysHit)),
              std::to_string(splitCls.count(cache::AccessClass::AlwaysHit))});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "shape reproduced: on heap-pointer workloads the split design\n"
      "preserves static classification of static/stack accesses (unknown\n"
      "heap addresses cannot touch their caches); without heap traffic the\n"
      "two designs classify equally.\n");
}

void BM_MustMayAnalysis(benchmark::State& state) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::heapMix(16));
  isa::Cfg cfg(prog);
  const auto oracle = cache::syntacticOracle(prog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache::classifyDataAccesses(
        cfg, cache::CacheGeometry{1, 16, 1}, oracle));
  }
}
BENCHMARK(BM_MustMayAnalysis);

}  // namespace

int main(int argc, char** argv) {
  runRow();
  return pred::bench::runBenchmarks(argc, argv);
}
