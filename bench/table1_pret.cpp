// table1_pret.cpp — Experiment E7: Table 1, row 5.
//
// Precision-timed architecture (Lickly et al. [13]).  Property: execution
// time.  Uncertainty: initial state and execution context.  Quality
// measure: variability — zero on the thread-interleaved pipeline, compared
// against the out-of-order pipeline on the SAME program.
//
// On the study API: the "pret" platform enumerates the thread slots (the
// only state PRET timing may depend on) and "ooo-fixedlat" enumerates the
// occupancy residues co-running code leaves behind — the catalog row runs
// both platforms on one workload.

#include "bench_common.h"
#include "core/report.h"
#include "isa/builder.h"
#include "study/catalog.h"
#include "study/query.h"

namespace {

using namespace pred;

void runRow() {
  bench::printHeader("Table 1, row 5", "precision-timed (PRET) architecture");

  const auto& inst = study::catalog::row("Precision-Timed");
  bench::printInstance(inst);

  exp::ExperimentEngine engine;
  exp::PlatformOptions opts;
  opts.numStates = 15;
  const auto report = study::compile(inst.spec).options(opts).runAll(engine);
  const auto& pret = report.findings[0];  // pret
  const auto& ooo = report.findings[1];   // ooo-fixedlat

  core::TextTable t({"pipeline", "min time", "max time", "variability",
                     "single-thread slowdown vs OoO best"});
  t.addRow({"OoO (PPC755-class)", std::to_string(ooo.bcet),
            std::to_string(ooo.wcet), std::to_string(ooo.wcet - ooo.bcet),
            "1.0x"});
  t.addRow({"PRET (4-way interleaved)", std::to_string(pret.bcet),
            std::to_string(pret.wcet), std::to_string(pret.wcet - pret.bcet),
            core::fmt(static_cast<double>(pret.bcet) /
                          static_cast<double>(ooo.bcet),
                      2) +
                "x"});
  std::printf("%s", t.render().c_str());

  // DEADLINE instruction: program-level control over timing.  Two variants
  // of different lengths complete at the same deadline-padded time.
  auto deadlineTime = [&engine](const isa::Program& prog,
                                const std::string& label) {
    exp::PlatformOptions popts;
    popts.numStates = 1;  // slot 0
    return study::Query()
        .workload(label, prog, {isa::Input{}})
        .platform("pret", popts)
        .measures({study::Measure::Pr})
        .run(engine)
        .bcet;
  };
  isa::ProgramBuilder fast;
  fast.li(1, 1).deadline(64).halt();
  isa::ProgramBuilder slow;
  slow.li(1, 1);
  for (int k = 0; k < 10; ++k) slow.addi(1, 1, 1);
  slow.deadline(64).halt();
  bench::printKV("DEADLINE(64): completion of 2-instr variant",
                 std::to_string(deadlineTime(fast.build(), "deadline-fast")));
  bench::printKV("DEADLINE(64): completion of 12-instr variant",
                 std::to_string(deadlineTime(slow.build(), "deadline-slow")));
  std::printf(
      "shape reproduced: PRET trades single-thread performance for zero\n"
      "variability over initial state AND context; the DEADLINE instruction\n"
      "gives both program variants identical, repeatable timing.\n");
}

void BM_PretThread(benchmark::State& state) {
  exp::PlatformOptions opts;
  opts.numStates = 1;
  const auto query = study::Query()
                         .workload("matmul-4")
                         .platform("pret", opts)
                         .measures({study::Measure::Pr});
  exp::ExperimentEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.run(engine).wcet);
  }
}
BENCHMARK(BM_PretThread);

}  // namespace

int main(int argc, char** argv) {
  runRow();
  return pred::bench::runBenchmarks(argc, argv);
}
