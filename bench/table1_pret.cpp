// table1_pret.cpp — Experiment E7: Table 1, row 5.
//
// Precision-timed architecture (Lickly et al. [13]).  Property: execution
// time.  Uncertainty: initial state and execution context.  Quality
// measure: variability — zero on the thread-interleaved pipeline, compared
// against the out-of-order pipeline on the SAME program.

#include "bench_common.h"
#include "core/measures.h"
#include "core/report.h"
#include "isa/ast.h"
#include "isa/builder.h"
#include "isa/exec.h"
#include "isa/workloads.h"
#include "pipeline/memory_iface.h"
#include "pipeline/ooo.h"
#include "pipeline/pret.h"

namespace {

using namespace pred;
using pipeline::Cycles;

void runRow() {
  bench::printHeader("Table 1, row 5", "precision-timed (PRET) architecture");

  core::PredictabilityInstance inst;
  inst.approach = "PRET thread-interleaved pipeline + scratchpads";
  inst.hardwareUnit = "Thread-interleaved pipeline, scratchpad memories";
  inst.property = core::Property::ExecutionTime;
  inst.uncertainties = {core::Uncertainty::InitialHardwareState,
                        core::Uncertainty::ExecutionContext};
  inst.measure = core::MeasureKind::Range;
  inst.citation = "[13,7]";
  bench::printInstance(inst);

  const auto prog = isa::ast::compileBranchy(isa::workloads::matMul(4));
  const auto bg = isa::ast::compileBranchy(isa::workloads::bubbleSort(8));
  const auto trace = isa::FunctionalCore::run(prog, isa::Input{}).trace;
  const auto tBg = isa::FunctionalCore::run(bg, isa::Input{}).trace;

  // PRET: sweep execution contexts (co-running hardware threads).
  pipeline::PretPipeline pret(pipeline::PretConfig{4});
  std::vector<Cycles> pretTimes;
  pretTimes.push_back(pret.run({&trace, nullptr, nullptr, nullptr})[0]);
  pretTimes.push_back(pret.run({&trace, &tBg, nullptr, nullptr})[0]);
  pretTimes.push_back(pret.run({&trace, &tBg, &tBg, &tBg})[0]);

  // OoO: sweep initial pipeline occupancy (contexts leave residue).
  pipeline::FixedLatencyMemory mem(2);
  pipeline::OooPipeline ooo(pipeline::OooConfig{}, &mem);
  std::vector<Cycles> oooTimes;
  for (Cycles a = 0; a <= 6; ++a) {
    for (Cycles b = 0; b <= 4; b += 2) oooTimes.push_back(ooo.run(trace, {a, b, 0}));
  }

  const auto sPret = core::computeStats(pretTimes);
  const auto sOoo = core::computeStats(oooTimes);

  core::TextTable t({"pipeline", "min time", "max time", "variability",
                     "single-thread slowdown vs OoO best"});
  t.addRow({"OoO (PPC755-class)", core::fmt(sOoo.minimum, 0),
            core::fmt(sOoo.maximum, 0), core::fmt(sOoo.range(), 0), "1.0x"});
  t.addRow({"PRET (4-way interleaved)", core::fmt(sPret.minimum, 0),
            core::fmt(sPret.maximum, 0), core::fmt(sPret.range(), 0),
            core::fmt(sPret.minimum / sOoo.minimum, 2) + "x"});
  std::printf("%s", t.render().c_str());

  // DEADLINE instruction: program-level control over timing.
  isa::ProgramBuilder fast;
  fast.li(1, 1).deadline(64).halt();
  isa::ProgramBuilder slow;
  slow.li(1, 1);
  for (int k = 0; k < 10; ++k) slow.addi(1, 1, 1);
  slow.deadline(64).halt();
  const auto tf =
      pret.threadTime(isa::FunctionalCore::run(fast.build(), {}).trace, 0);
  const auto ts =
      pret.threadTime(isa::FunctionalCore::run(slow.build(), {}).trace, 0);
  bench::printKV("DEADLINE(64): completion of 2-instr variant",
                 std::to_string(tf));
  bench::printKV("DEADLINE(64): completion of 12-instr variant",
                 std::to_string(ts));
  std::printf(
      "shape reproduced: PRET trades single-thread performance for zero\n"
      "variability over initial state AND context; the DEADLINE instruction\n"
      "gives both program variants identical, repeatable timing.\n");
}

void BM_PretThread(benchmark::State& state) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::matMul(4));
  const auto trace = isa::FunctionalCore::run(prog, isa::Input{}).trace;
  pipeline::PretPipeline pret(pipeline::PretConfig{4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pret.threadTime(trace, 0));
  }
}
BENCHMARK(BM_PretThread);

}  // namespace

int main(int argc, char** argv) {
  runRow();
  return pred::bench::runBenchmarks(argc, argv);
}
