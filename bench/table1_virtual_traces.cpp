// table1_virtual_traces.cpp — Experiment E8: Table 1, row 6.
//
// Predictable out-of-order execution using virtual traces (Whitham &
// Audsley [28]).  Property: execution time of program paths.  Uncertainty:
// cache/predictor state and the input values of variable-latency
// instructions.  Quality measure: variability — zero within the virtual
// trace discipline.

#include "bench_common.h"
#include "core/measures.h"
#include "core/report.h"
#include "isa/ast.h"
#include "isa/cfg.h"
#include "isa/exec.h"
#include "isa/workloads.h"
#include "pipeline/memory_iface.h"
#include "pipeline/ooo.h"
#include "pipeline/vtrace.h"

namespace {

using namespace pred;
using pipeline::Cycles;

void runRow() {
  bench::printHeader("Table 1, row 6",
                     "predictable out-of-order execution using virtual traces");

  core::PredictabilityInstance inst;
  inst.approach = "Virtual traces";
  inst.hardwareUnit = "Superscalar OoO pipeline + scratchpads";
  inst.property = core::Property::PathTime;
  inst.uncertainties = {core::Uncertainty::InitialHardwareState,
                        core::Uncertainty::ProgramInput};
  inst.measure = core::MeasureKind::Range;
  inst.citation = "[28]";
  bench::printInstance(inst);

  // divKernel: data-dependent DIV latencies + memory traffic.  Fix one
  // PATH (same trace shape) while varying operand magnitudes and pipeline
  // occupancy; compare plain OoO against the virtual-trace discipline.
  const auto prog = isa::ast::compileBranchy(isa::workloads::divKernel(12));
  isa::Cfg cfg(prog);
  const auto base = prog.variables.at("a");

  std::vector<isa::Input> inputs;
  for (std::int64_t magnitude : {1, 1000, 1000000, 1000000000}) {
    isa::Input in = isa::varInput(prog, "x", 0);
    for (int i = 0; i < 12; ++i) in.mem[base + i] = magnitude;
    in.name = "magnitude=" + std::to_string(magnitude);
    inputs.push_back(in);
  }

  pipeline::FixedLatencyMemory mem(2);
  pipeline::OooPipeline ooo(pipeline::OooConfig{}, &mem);
  pipeline::VirtualTracePipeline vt(pipeline::VirtualTraceConfig{},
                                    pipeline::computeTraceBoundaries(cfg, 16));

  std::vector<Cycles> oooTimes, vtTimes;
  for (const auto& in : inputs) {
    const auto trace = isa::FunctionalCore::run(prog, in).trace;
    for (Cycles a = 0; a <= 4; a += 2) {
      oooTimes.push_back(ooo.run(trace, {a, 0, 0}));
    }
    vtTimes.push_back(vt.run(trace));
  }
  const auto so = core::computeStats(oooTimes);
  const auto sv = core::computeStats(vtTimes);

  core::TextTable t({"discipline", "min", "max", "variability",
                     "slowdown vs OoO best"});
  t.addRow({"plain OoO (variable DIV, state)", core::fmt(so.minimum, 0),
            core::fmt(so.maximum, 0), core::fmt(so.range(), 0), "1.0x"});
  t.addRow({"virtual traces (const DIV, reset)", core::fmt(sv.minimum, 0),
            core::fmt(sv.maximum, 0), core::fmt(sv.range(), 0),
            core::fmt(sv.minimum / so.minimum, 2) + "x"});
  std::printf("%s", t.render().c_str());
  std::printf(
      "shape reproduced: within virtual traces every timing-variable\n"
      "feature is constrained (constant-duration DIV, scratchpad, reset at\n"
      "trace boundaries), so the path's execution time is a constant; the\n"
      "plain OoO pipeline varies with operand values and initial state.\n");
}

void BM_VirtualTrace(benchmark::State& state) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::divKernel(12));
  isa::Cfg cfg(prog);
  const auto trace = isa::FunctionalCore::run(prog, isa::Input{}).trace;
  pipeline::VirtualTracePipeline vt(pipeline::VirtualTraceConfig{},
                                    pipeline::computeTraceBoundaries(cfg, 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(vt.run(trace));
  }
}
BENCHMARK(BM_VirtualTrace);

}  // namespace

int main(int argc, char** argv) {
  runRow();
  return pred::bench::runBenchmarks(argc, argv);
}
