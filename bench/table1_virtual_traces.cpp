// table1_virtual_traces.cpp — Experiment E8: Table 1, row 6.
//
// Predictable out-of-order execution using virtual traces (Whitham &
// Audsley [28]).  Property: execution time of program paths.  Uncertainty:
// cache/predictor state and the input values of variable-latency
// instructions.  Quality measure: variability — zero within the virtual
// trace discipline.
//
// On the study API: the "divkernel-12-magnitudes" workload fixes one PATH
// (same trace shape) while sweeping operand magnitudes, and the catalog
// row compares the "vtrace" platform (constant-duration DIV, scratchpad,
// reset at trace boundaries) against "ooo-fixedlat" (plain OoO over
// occupancy states).

#include "bench_common.h"
#include "core/report.h"
#include "study/catalog.h"
#include "study/query.h"

namespace {

using namespace pred;

void runRow() {
  bench::printHeader("Table 1, row 6",
                     "predictable out-of-order execution using virtual traces");

  const auto& inst = study::catalog::row("Virtual traces");
  bench::printInstance(inst);

  exp::ExperimentEngine engine;
  const auto report = study::compile(inst.spec).runAll(engine);
  const auto& vt = report.findings[0];   // vtrace
  const auto& ooo = report.findings[1];  // ooo-fixedlat

  core::TextTable t({"discipline", "min", "max", "variability",
                     "slowdown vs OoO best"});
  t.addRow({"plain OoO (variable DIV, state)", std::to_string(ooo.bcet),
            std::to_string(ooo.wcet), std::to_string(ooo.wcet - ooo.bcet),
            "1.0x"});
  t.addRow({"virtual traces (const DIV, reset)", std::to_string(vt.bcet),
            std::to_string(vt.wcet), std::to_string(vt.wcet - vt.bcet),
            core::fmt(static_cast<double>(vt.bcet) /
                          static_cast<double>(ooo.bcet),
                      2) +
                "x"});
  std::printf("%s", t.render().c_str());
  bench::printKV("Pr within the virtual-trace discipline",
                 core::fmt(vt.pr.value, 4));
  bench::printKV("Pr on the plain OoO pipeline", core::fmt(ooo.pr.value, 4));
  std::printf(
      "shape reproduced: within virtual traces every timing-variable\n"
      "feature is constrained (constant-duration DIV, scratchpad, reset at\n"
      "trace boundaries), so the path's execution time is a constant; the\n"
      "plain OoO pipeline varies with operand values and initial state.\n");
}

void BM_VirtualTrace(benchmark::State& state) {
  const auto query = study::Query()
                         .workload("divkernel-12-magnitudes")
                         .platform("vtrace")
                         .measures({study::Measure::Pr});
  exp::ExperimentEngine engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(query.run(engine).wcet);
  }
}
BENCHMARK(BM_VirtualTrace);

}  // namespace

int main(int argc, char** argv) {
  runRow();
  return pred::bench::runBenchmarks(argc, argv);
}
