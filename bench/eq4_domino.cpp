// eq4_domino.cpp — Experiment E2: regenerates Equation 4 / Section 2.2.
//
// The PPC755-style domino effect: T_{p_n}(q1*) = 9n+1, T_{p_n}(q2*) = 12n,
// so the state-induced predictability of the program family is bounded by
// SIPr_{p_n} <= (9n+1)/12n -> 3/4, and the difference 3n-1 grows without
// bound (the Lundqvist/Stenström domino criterion).

#include "bench_common.h"
#include "core/definitions.h"
#include "core/domino.h"
#include "core/report.h"
#include "pipeline/domino_program.h"

namespace {

using namespace pred;
using pipeline::Cycles;

void runEquation4() {
  bench::printHeader("Equation 4", "PPC755 domino effect (Schneider)");

  core::PredictabilityInstance inst;
  inst.approach = "Domino effect in an out-of-order pipeline";
  inst.hardwareUnit = "Two asymmetric integer units, greedy dispatcher";
  inst.citation = "[22,14]";
  inst.spec.property = core::Property::ExecutionTime;
  inst.spec.uncertainties = {core::Uncertainty::InitialPipelineState};
  inst.spec.measure = core::MeasureKind::Ratio;
  bench::printInstance(inst);

  core::TextTable t({"n", "T(q1*) [9n+1]", "T(q2*) [12n]", "diff",
                     "SIPr bound (9n+1)/12n"});
  core::DominoSeries series;
  for (int n : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const Cycles t1 = pipeline::dominoTime(n, pipeline::dominoStateQ1());
    const Cycles t2 = pipeline::dominoTime(n, pipeline::dominoStateQ2());
    t.addRow({std::to_string(n), std::to_string(t1), std::to_string(t2),
              std::to_string(t2 - t1),
              core::fmt(static_cast<double>(t1) / static_cast<double>(t2), 5)});
    series.n.push_back(static_cast<std::uint64_t>(n));
    series.timeFromQ1.push_back(t1);
    series.timeFromQ2.push_back(t2);
  }
  std::printf("%s", t.render().c_str());

  const auto verdict = core::detectDomino(series);
  bench::printKV("domino detector", verdict.summary());
  bench::printKV("limit of SIPr bound", "3/4 = 0.75");
  std::printf(
      "\nnote: q2* is the EMPTY pipeline — as in the paper, the empty state\n"
      "is the slower one; a partially filled pipeline (q1*: IU1 busy for 2\n"
      "more cycles) forces the greedy dual dispatcher into the faster\n"
      "pairing, and the states never converge.\n");
}

void BM_DominoSimulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pipeline::dominoTime(n, pipeline::dominoStateQ2()));
  }
}
BENCHMARK(BM_DominoSimulation)->Arg(16)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  runEquation4();
  return pred::bench::runBenchmarks(argc, argv);
}
