// exp_engine.cpp — Experiment-engine performance: naive serial vs memoized
// serial vs memoized parallel computation of the Q x I timing matrix.
//
// The naive path is what the seed's hand-wired benches effectively did: the
// functional core re-runs for EVERY matrix cell even though the trace
// depends on the input alone.  The engine removes that redundancy (one
// trace per input, replayed across all q) and then tiles the cross product
// over a thread pool.  The header section verifies the acceptance property
// on a 16 x 16 grid — parallel output bit-identical to serial — before the
// google-benchmarks time the three paths.

#include "bench_common.h"
#include "core/definitions.h"
#include "exp/engine.h"
#include "exp/platform.h"
#include "study/scenario.h"
#include "isa/ast.h"
#include "isa/workloads.h"

namespace {

using namespace pred;

constexpr int kGridStates = 16;
constexpr int kGridInputs = 16;

isa::Program gridProgram() {
  return isa::ast::compileBranchy(isa::workloads::linearSearch(16));
}

std::vector<isa::Input> gridInputs(const isa::Program& prog, int howMany) {
  auto inputs =
      isa::workloads::randomArrayInputs(prog, "a", 16, howMany, 2024);
  for (auto& in : inputs) {
    in = isa::mergeInputs(in, isa::varInput(prog, "key", 7));
  }
  return inputs;
}

exp::PlatformOptions gridOptions() {
  exp::PlatformOptions opts;
  opts.numStates = kGridStates;
  return opts;
}

/// The pre-engine shape: TimingMatrix::compute over a TimingFunction that
/// re-runs the functional core per cell.
core::TimingMatrix naiveSerialMatrix(const exp::TimingModel& model,
                                     const isa::Program& prog,
                                     const std::vector<isa::Input>& inputs) {
  const core::TimingFunction fn = [&](std::size_t q, std::size_t i) {
    const auto run = isa::FunctionalCore::run(prog, inputs[i]);
    return model.time(q, run.trace);
  };
  return core::TimingMatrix::compute(fn, model.numStates(), inputs.size());
}

void verifyGrid() {
  bench::printHeader("Experiment engine",
                     "serial vs parallel vs memoized matrix computation");
  const auto prog = gridProgram();
  const auto inputs = gridInputs(prog, kGridInputs);
  const auto model =
      exp::PlatformRegistry::instance().make("inorder-lru", prog,
                                             gridOptions());

  exp::ExperimentEngine serial(exp::EngineConfig{1});
  exp::ExperimentEngine parallel(exp::EngineConfig{0});
  const auto mNaive = naiveSerialMatrix(*model, prog, inputs);
  const auto mSerial = serial.computeMatrix(*model, prog, inputs);
  const auto mParallel = parallel.computeMatrix(*model, prog, inputs);

  bench::printKV("grid", std::to_string(kGridStates) + " states x " +
                             std::to_string(kGridInputs) + " inputs");
  bench::printKV("worker threads (parallel path)",
                 std::to_string(parallel.resolvedThreads()));
  bench::printKV("parallel == serial (bit-identical)",
                 mSerial == mParallel ? "yes" : "NO (BUG)");
  bench::printKV("memoized == naive (same matrix)",
                 mSerial == mNaive ? "yes" : "NO (BUG)");
  bench::printKV("functional runs, naive path",
                 std::to_string(kGridStates * kGridInputs));
  bench::printKV("functional runs, memoized path",
                 std::to_string(serial.traceStore().misses()));
}

void BM_NaiveSerial(benchmark::State& state) {
  const auto prog = gridProgram();
  const auto inputs = gridInputs(prog, static_cast<int>(state.range(0)));
  auto opts = gridOptions();
  opts.numStates = static_cast<int>(state.range(0));
  const auto model =
      exp::PlatformRegistry::instance().make("inorder-lru", prog, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naiveSerialMatrix(*model, prog, inputs).wcet());
  }
}
BENCHMARK(BM_NaiveSerial)->Arg(16)->Arg(32);

void BM_MemoizedSerial(benchmark::State& state) {
  const auto prog = gridProgram();
  const auto inputs = gridInputs(prog, static_cast<int>(state.range(0)));
  auto opts = gridOptions();
  opts.numStates = static_cast<int>(state.range(0));
  const auto model =
      exp::PlatformRegistry::instance().make("inorder-lru", prog, opts);
  for (auto _ : state) {
    exp::ExperimentEngine engine(exp::EngineConfig{1});
    benchmark::DoNotOptimize(
        engine.computeMatrix(*model, prog, inputs).wcet());
  }
}
BENCHMARK(BM_MemoizedSerial)->Arg(16)->Arg(32);

void BM_MemoizedParallel(benchmark::State& state) {
  const auto prog = gridProgram();
  const auto inputs = gridInputs(prog, static_cast<int>(state.range(0)));
  auto opts = gridOptions();
  opts.numStates = static_cast<int>(state.range(0));
  const auto model =
      exp::PlatformRegistry::instance().make("inorder-lru", prog, opts);
  for (auto _ : state) {
    exp::ExperimentEngine engine(exp::EngineConfig{0});
    benchmark::DoNotOptimize(
        engine.computeMatrix(*model, prog, inputs).wcet());
  }
}
BENCHMARK(BM_MemoizedParallel)->Arg(16)->Arg(32);

/// Whole-grid view: a scenario sweep re-timing one workload on several
/// platforms, sharing traces across all of them through one engine.
void BM_ScenarioSweep(benchmark::State& state) {
  const auto prog = gridProgram();
  const auto inputs = gridInputs(prog, 8);
  for (auto _ : state) {
    study::ScenarioSuite suite;
    suite.addWorkload("linearSearch", prog, inputs);
    exp::PlatformOptions opts;
    opts.numStates = 8;
    suite.addPlatform("inorder-lru", opts);
    suite.addPlatform("inorder-fifo", opts);
    suite.addPlatform("ooo-lru", opts);
    suite.addPlatform("pret", opts);
    exp::ExperimentEngine engine;
    benchmark::DoNotOptimize(suite.run(engine).size());
  }
}
BENCHMARK(BM_ScenarioSweep);

}  // namespace

int main(int argc, char** argv) {
  verifyGrid();
  return pred::bench::runBenchmarks(argc, argv);
}
