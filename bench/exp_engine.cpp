// exp_engine.cpp — Experiment-engine performance: naive serial vs memoized
// (interpreted) vs packed-replay computation of the Q x I timing matrix.
//
// The naive path is what the seed's hand-wired benches effectively did: the
// functional core re-runs for EVERY matrix cell even though the trace
// depends on the input alone.  The engine removes that redundancy (one
// trace per input, replayed across all q), tiles the cross product over the
// shared worker pool, and — since the replay-kernel layer — lowers each
// trace into a flat ReplayProgram replayed against packed cache snapshots,
// making the per-cell loop allocation-free.  The header section verifies
// the acceptance properties (parallel == serial, packed == interpreted,
// bit-identical) and times a 64 x 64 exhaustive grid through all three
// paths, emitting the machine-readable BENCH_exhaustive.json artifact
// ($BENCH_JSON overrides the output path) that scripts/bench_run.sh and the
// CI perf-smoke job consume.

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/definitions.h"
#include "exp/engine.h"
#include "exp/platform.h"
#include "exp/shard.h"
#include "grid/attach_worker.h"
#include "grid/client.h"
#include "grid/scheduler.h"
#include "grid/server.h"
#include "obs/span.h"
#include "study/distributed.h"
#include "study/scenario.h"
#include "study/workloads.h"
#include "isa/ast.h"
#include "isa/workloads.h"

namespace {

using namespace pred;

constexpr int kGridStates = 16;
constexpr int kGridInputs = 16;

isa::Program gridProgram() {
  return isa::ast::compileBranchy(isa::workloads::linearSearch(16));
}

std::vector<isa::Input> gridInputs(const isa::Program& prog, int howMany) {
  auto inputs =
      isa::workloads::randomArrayInputs(prog, "a", 16, howMany, 2024);
  for (auto& in : inputs) {
    in = isa::mergeInputs(in, isa::varInput(prog, "key", 7));
  }
  return inputs;
}

exp::PlatformOptions gridOptions() {
  exp::PlatformOptions opts;
  opts.numStates = kGridStates;
  return opts;
}

/// The pre-engine shape: TimingMatrix::compute over a TimingFunction that
/// re-runs the functional core per cell.
core::TimingMatrix naiveSerialMatrix(const exp::TimingModel& model,
                                     const isa::Program& prog,
                                     const std::vector<isa::Input>& inputs) {
  const core::TimingFunction fn = [&](std::size_t q, std::size_t i) {
    const auto run = isa::FunctionalCore::run(prog, inputs[i]);
    return model.time(q, run.trace);
  };
  return core::TimingMatrix::compute(fn, model.numStates(), inputs.size());
}

/// Best-of-`reps` wall nanoseconds of fn() — the one timing protocol every
/// path of the perf grid is measured with, so the recorded ratios compare
/// like with like.
template <typename Fn>
double bestOfNs(int reps, const Fn& fn) {
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

/// Best-of-`reps` wall time of one exhaustive matrix computation, in
/// nanoseconds per cell.  Traces are pre-warmed into the engine's store so
/// the measurement isolates the replay loop (the quantity the replay-kernel
/// layer optimizes).
double nsPerCell(exp::ExperimentEngine& engine, const exp::TimingModel& model,
                 const isa::Program& prog,
                 const std::vector<isa::Input>& inputs, int reps) {
  engine.computeMatrix(model, prog, inputs);  // warm traces + compiled forms
  const double best = bestOfNs(reps, [&] {
    benchmark::DoNotOptimize(engine.computeMatrix(model, prog, inputs).wcet());
  });
  return best / static_cast<double>(model.numStates() * inputs.size());
}

/// One perf grid's worth of JSON (the value under "grids": {...}).
struct GridReport {
  bool identical = false;
  std::string json;
};

/// Times a 64 x 64 exhaustive matrix on one platform through the naive,
/// interpreted-replay, and packed-replay paths — asserted cell-for-cell
/// identical, timed, and rendered as one JSON grid object.
GridReport perfGridFor(const std::string& platform,
                       const cache::CacheGeometry& dataGeom, int reps) {
  constexpr int kStates = 64;
  constexpr int kInputs = 64;
  bench::printHeader("Replay kernels: " + platform,
                     "64 x 64 exhaustive grid: naive vs interpreted vs packed");
  const auto prog = gridProgram();
  const auto inputs = gridInputs(prog, kInputs);
  exp::PlatformOptions opts;
  opts.numStates = kStates;
  opts.dataGeom = dataGeom;
  const auto model = exp::PlatformRegistry::instance().make(platform, prog,
                                                            opts);

  exp::EngineConfig interpCfg;
  interpCfg.usePackedReplay = false;
  exp::EngineConfig packedCfg;
  exp::ExperimentEngine interp(interpCfg);
  exp::ExperimentEngine packed(packedCfg);

  bench::printKV("supports packed replay",
                 model->supportsPackedReplay() ? "yes" : "NO (BUG)");
  const auto mNaive = naiveSerialMatrix(*model, prog, inputs);
  const auto mInterp = interp.computeMatrix(*model, prog, inputs);
  const auto mPacked = packed.computeMatrix(*model, prog, inputs);
  const bool identical = mNaive == mInterp && mInterp == mPacked;
  bench::printKV("packed == interpreted == naive (bit-identical)",
                 identical ? "yes" : "NO (BUG)");

  const double naiveNs =
      bestOfNs(reps,
               [&] {
                 benchmark::DoNotOptimize(
                     naiveSerialMatrix(*model, prog, inputs).wcet());
               }) /
      (kStates * kInputs);
  const double interpNs = nsPerCell(interp, *model, prog, inputs, reps);
  // Per-phase breakdown of exactly the timed packed reps: the engine's
  // cumulative report delta over the measurement window.
  const auto packedBefore = packed.report();
  const double packedNs = nsPerCell(packed, *model, prog, inputs, reps);
  const auto packedPhases = packed.report().deltaSince(packedBefore).phases;

  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", naiveNs);
  bench::printKV("naive serial ns/cell", buf);
  std::snprintf(buf, sizeof buf, "%.1f", interpNs);
  bench::printKV("memoized interpreted ns/cell (pre-kernel path)", buf);
  std::snprintf(buf, sizeof buf, "%.1f", packedNs);
  bench::printKV("packed replay ns/cell", buf);
  std::snprintf(buf, sizeof buf, "%.2fx", interpNs / packedNs);
  bench::printKV("speedup packed vs interpreted", buf);
  std::snprintf(buf, sizeof buf, "%.2fx", naiveNs / packedNs);
  bench::printKV("speedup packed vs naive", buf);

  bench::JsonObject grid;
  grid.field("states", kStates).field("inputs", kInputs);
  bench::JsonObject geom;
  geom.field("line_words", static_cast<int>(dataGeom.lineWords))
      .field("sets", static_cast<int>(dataGeom.numSets))
      .field("ways", dataGeom.ways);
  bench::JsonObject cells;
  cells.field("naive", naiveNs)
      .field("interpreted", interpNs)
      .field("packed", packedNs);
  bench::JsonObject speedup;
  speedup.field("packed_vs_interpreted", interpNs / packedNs)
      .field("packed_vs_naive", naiveNs / packedNs);
  // Phase totals over the packed measurement window (warm-up + timed
  // reps), from the obs layer: where the wall time of this grid actually
  // went.  Span counts let trend tooling normalize per rep.
  bench::JsonObject phases;
  for (const auto& [name, st] : packedPhases) {
    bench::JsonObject p;
    p.field("spans", st.count)
        .field("total_ns", st.totalNs)
        .field("max_ns", st.maxNs);
    phases.rawField(name, p.str());
  }
  bench::JsonObject obj;
  obj.field("workload", std::string("linearSearch-16"))
      .rawField("grid", grid.str())
      .rawField("data_geom", geom.str())
      .rawField("bit_identical", identical ? "true" : "false")
      .rawField("ns_per_cell", cells.str())
      .rawField("speedup", speedup.str())
      // Trace-equivalence stats: classes among this grid's 64 inputs (the
      // store assigns class ids as it fills, collapse on or off), and how
      // many cell evaluations the engine actually skipped here (zero on
      // the matrix path — computeMatrix never collapses; the streaming
      // "collapse" grid below is where this is non-zero).
      .field("trace_classes",
             static_cast<std::uint64_t>(packed.traceStore().classCount()))
      .field("cells_collapsed",
             packed.metrics().counter("engine.cells_collapsed").value())
      .rawField("phases", phases.str());
  return GridReport{identical, obj.str()};
}

/// Trace-class collapse on the duplicate-heavy grid: the registry's
/// linearsearch-16x64-dup preset (16 base arrays x 4 trace-equal variants
/// = 64 inputs, <= 16 trace classes) streamed through reduceCells with
/// collapseTraceClasses off vs on.  Collapse times each class once per
/// state and fans the result out to every member, so ns/cell drops by
/// roughly inputs/classes while the accumulator stays bit-identical —
/// asserted here and gated again (witness-for-witness) by the
/// differential and shard tests.
std::string collapseGrid(bool* identical, int reps) {
  constexpr int kStates = 64;
  const std::string platform = "inorder-lru";
  const std::string workload = "linearsearch-16x64-dup";
  bench::printHeader("Trace-class collapse",
                     "64 x 64 duplicate-heavy grid: collapse off vs on");
  const auto w = study::WorkloadRegistry::instance().make(workload);
  exp::PlatformOptions opts;
  opts.numStates = kStates;
  const auto model =
      exp::PlatformRegistry::instance().make(platform, w.program, opts);

  exp::EngineConfig offCfg;
  offCfg.collapseTraceClasses = false;
  exp::ExperimentEngine off(offCfg);
  exp::ExperimentEngine on;  // defaults: packed replay + collapse, both on

  const auto accOff = off.reduceCells(*model, w.program, w.inputs);
  const auto before = on.metrics().counter("engine.cells_collapsed").value();
  const auto accOn = on.reduceCells(*model, w.program, w.inputs);
  const auto collapsedPerSweep =
      on.metrics().counter("engine.cells_collapsed").value() - before;
  const bool same = accOn.identicalTo(accOff);
  *identical = same;
  const auto classes = on.traceStore().classCount();
  bench::printKV("collapsed == uncollapsed (bit-identical)",
                 same ? "yes" : "NO (BUG)");
  bench::printKV("trace classes among 64 inputs", std::to_string(classes));

  const double cells =
      static_cast<double>(kStates) * static_cast<double>(w.inputs.size());
  const auto reduceNs = [&](exp::ExperimentEngine& e) {
    return bestOfNs(reps, [&] {
             benchmark::DoNotOptimize(
                 e.reduceCells(*model, w.program, w.inputs).wcet());
           }) /
           cells;
  };
  const double offNs = reduceNs(off);
  const double onNs = reduceNs(on);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", offNs);
  bench::printKV("uncollapsed ns/cell", buf);
  std::snprintf(buf, sizeof buf, "%.1f", onNs);
  bench::printKV("collapsed ns/cell", buf);
  std::snprintf(buf, sizeof buf, "%.2fx", offNs / onNs);
  bench::printKV("speedup collapsed vs uncollapsed", buf);

  bench::JsonObject gridShape;
  gridShape.field("states", kStates)
      .field("inputs", static_cast<int>(w.inputs.size()));
  bench::JsonObject cellsNs;
  cellsNs.field("uncollapsed", offNs).field("collapsed", onNs);
  bench::JsonObject speedup;
  speedup.field("collapsed_vs_uncollapsed", offNs / onNs);
  bench::JsonObject obj;
  obj.field("workload", workload)
      .field("platform", platform)
      .rawField("grid", gridShape.str())
      .field("trace_classes", static_cast<std::uint64_t>(classes))
      .field("cells_collapsed_per_sweep", collapsedPerSweep)
      .rawField("bit_identical", same ? "true" : "false")
      .rawField("ns_per_cell", cellsNs.str())
      .rawField("speedup", speedup.str());
  return obj.str();
}

/// Sharded-throughput grid: the work-stealing scheduler (src/grid/) runs
/// an 8-shard 64 x 64 grid at K ∈ {1, 2, 4, 8} stealing workers through
/// the registry-resolving evaluator — the same fan-out an in-process
/// pred-grid-server performs per job.  Reported as cells/sec so the JSON
/// trend records scheduler + per-shard-engine overhead (every shard
/// resolves its own traces, the honest distributed cost); each K's merged
/// bytes are asserted identical to a single-process reduceCells.  On a
/// 1-core container the K curve is flat — the gate is a throughput FLOOR,
/// not a scaling claim.
std::string shardedThroughputGrid(bool* identical) {
  constexpr int kStates = 64;
  constexpr std::size_t kShards = 8;
  const std::string platform = "inorder-lru";
  const std::string workload = "linearsearch-16x64";
  bench::printHeader("Grid scheduler: sharded throughput",
                     "8-shard 64 x 64 grid at K work-stealing workers");

  const auto w = study::WorkloadRegistry::instance().make(workload);
  exp::ShardSpec whole;
  whole.platform = platform;
  whole.workload = workload;
  whole.options.numStates = kStates;
  // One thread per shard engine: the scheduler's workers are the
  // parallelism axis here; nesting pools would just oversubscribe.
  whole.engine.threads = 1;
  const auto model =
      exp::PlatformRegistry::instance().make(platform, w.program,
                                             whole.options);
  whole.qEnd = model->numStates();
  whole.iEnd = w.inputs.size();
  const double cells =
      static_cast<double>(whole.qEnd) * static_cast<double>(whole.iEnd);

  exp::ExperimentEngine ref(exp::EngineConfig{1});
  const std::string refBytes =
      ref.reduceCells(*model, w.program, w.inputs).serialize();

  const auto eval = study::gridShardEvaluator();
  const auto plan = exp::planShards(whole, kShards);
  bool allIdentical = true;
  bench::JsonObject perK;
  char buf[64];
  for (const int k : {1, 2, 4, 8}) {
    grid::SchedulerConfig cfg;
    cfg.workers = k;
    grid::WorkStealingScheduler sched(cfg);
    std::string merged;
    const double ns =
        bestOfNs(2, [&] { merged = sched.run(plan, eval).merged.serialize(); });
    allIdentical = allIdentical && merged == refBytes;
    const double cellsPerSec = cells * 1e9 / ns;
    std::snprintf(buf, sizeof buf, "%.0f", cellsPerSec);
    bench::printKV("K=" + std::to_string(k) + " workers, cells/sec", buf);
    perK.field("k" + std::to_string(k), cellsPerSec);
  }
  bench::printKV("merged == single-process (bit-identical, all K)",
                 allIdentical ? "yes" : "NO (BUG)");

  bench::JsonObject obj;
  bench::JsonObject gridShape;
  gridShape.field("states", kStates)
      .field("inputs", static_cast<int>(whole.iEnd))
      .field("shards", static_cast<int>(kShards));
  obj.field("workload", workload)
      .field("platform", platform)
      .rawField("grid", gridShape.str())
      .rawField("bit_identical", allIdentical ? "true" : "false")
      .rawField("cells_per_sec", perK.str());
  *identical = allIdentical;
  return obj.str();
}

/// Attached-worker throughput: the same 8-shard 64 x 64 grid, but through
/// a full attach-only GridServer on a loopback TCP socket with K remote
/// `runAttachWorker` loops dialed in — frames, leases, and ShardDone
/// merging included, the honest cost of the remote-worker transport
/// relative to the in-process scheduler above.  Submissions bypass the
/// result cache so every rep recomputes; each K's bytes are asserted
/// identical to the single-process reference.  On a 1-core container the
/// K curve is flat — the gate is a throughput FLOOR, not a scaling claim.
std::string attachedThroughputGrid(bool* identical) {
  constexpr int kStates = 64;
  constexpr std::size_t kShards = 8;
  const std::string platform = "inorder-lru";
  const std::string workload = "linearsearch-16x64";
  bench::printHeader("Grid server: attached-worker throughput",
                     "8-shard 64 x 64 grid at K attached TCP workers");

  const auto w = study::WorkloadRegistry::instance().make(workload);
  exp::ShardSpec whole;
  whole.platform = platform;
  whole.workload = workload;
  whole.options.numStates = kStates;
  whole.engine.threads = 1;
  const auto model =
      exp::PlatformRegistry::instance().make(platform, w.program,
                                             whole.options);
  whole.qEnd = model->numStates();
  whole.iEnd = w.inputs.size();
  const double cells =
      static_cast<double>(whole.qEnd) * static_cast<double>(whole.iEnd);

  exp::ExperimentEngine ref(exp::EngineConfig{1});
  const std::string refBytes =
      ref.reduceCells(*model, w.program, w.inputs).serialize();

  const auto eval = study::gridShardEvaluator();
  bool allIdentical = true;
  bench::JsonObject perK;
  char buf[64];
  for (const int k : {1, 2, 4}) {
    grid::ServerConfig cfg;
    cfg.endpoint = "tcp:127.0.0.1:0";
    cfg.scheduler.workers = 0;  // attach-only: every shard rides a socket
    cfg.scheduler.retryBackoffMs = 1;
    grid::GridServer server(std::move(cfg));
    std::thread serving([&server] { server.serveForever(); });
    const std::string endpoint = server.boundEndpointText();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(k));
    for (int t = 0; t < k; ++t) {
      workers.emplace_back([&endpoint, &eval] {
        grid::runAttachWorker(endpoint, eval, {});
      });
    }
    std::string merged;
    const double ns = bestOfNs(2, [&] {
      grid::GridClient client(endpoint);
      merged = client.submit(whole, kShards, /*useCache=*/false)
                   .accumulatorText;
    });
    allIdentical = allIdentical && merged == refBytes;
    grid::GridClient(endpoint).shutdownServer();
    serving.join();
    for (std::thread& t : workers) t.join();
    const double cellsPerSec = cells * 1e9 / ns;
    std::snprintf(buf, sizeof buf, "%.0f", cellsPerSec);
    bench::printKV("K=" + std::to_string(k) + " attached, cells/sec", buf);
    perK.field("k" + std::to_string(k), cellsPerSec);
  }
  bench::printKV("merged == single-process (bit-identical, all K)",
                 allIdentical ? "yes" : "NO (BUG)");

  bench::JsonObject obj;
  bench::JsonObject gridShape;
  gridShape.field("states", kStates)
      .field("inputs", static_cast<int>(whole.iEnd))
      .field("shards", static_cast<int>(kShards));
  obj.field("workload", workload)
      .field("platform", platform)
      .rawField("grid", gridShape.str())
      .rawField("bit_identical", allIdentical ? "true" : "false")
      .rawField("cells_per_sec", perK.str());
  *identical = allIdentical;
  return obj.str();
}

/// The acceptance grids of the replay-kernel layer — the additive in-order
/// fast path AND the cycle-accurate OOO kernel path — recorded in one
/// BENCH_exhaustive.json that scripts/bench_run.sh gates per grid.
///
/// The in-order grid keeps the PR-3 configuration (default tiny cache) so
/// its ns/cell stays comparable with the recorded baselines.  The OOO grid
/// uses a realistic 64-set x 4-way data cache: the OOO models' legacy path
/// deep-copies the cache per cell, so the tiny default geometry would
/// understate exactly the cost the packed snapshot replay removes.
void perfGrid(const char* argv0) {
  const int reps = 5;
  const auto inorder =
      perfGridFor("inorder-lru", exp::PlatformOptions{}.dataGeom, reps);
  const auto ooo =
      perfGridFor("ooo-fifo", cache::CacheGeometry{4, 64, 4}, reps);
  bool shardedIdentical = false;
  const std::string sharded = shardedThroughputGrid(&shardedIdentical);
  bool attachedIdentical = false;
  const std::string attached = attachedThroughputGrid(&attachedIdentical);
  bool collapseIdentical = false;
  const std::string collapse = collapseGrid(&collapseIdentical, reps);

  // Default the artifact NEXT TO THE BINARY (the build directory), not the
  // cwd: smoke runs launched from the repo root used to litter it with
  // BENCH_*.json, and a stale root-level JSON can mask a perf regression.
  // $BENCH_JSON still overrides (scripts/bench_run.sh and CI pin it).
  const char* envPath = std::getenv("BENCH_JSON");
  std::string path = "BENCH_exhaustive.json";
  if (envPath != nullptr) {
    path = envPath;
  } else {
    const std::string self = argv0 ? argv0 : "";
    const auto slash = self.find_last_of('/');
    if (slash != std::string::npos) {
      path = self.substr(0, slash + 1) + path;
    }
  }
  bench::JsonObject grids;
  grids.rawField("inorder-lru", inorder.json).rawField("ooo-fifo", ooo.json);
  bench::JsonObject root;
  root.field("bench", std::string("exhaustive"))
      .field("threads", exp::ExperimentEngine().resolvedThreads())
      .rawField("metrics_enabled", obs::compiledIn() ? "true" : "false")
      .rawField("bit_identical",
                inorder.identical && ooo.identical && shardedIdentical &&
                        attachedIdentical && collapseIdentical
                    ? "true"
                    : "false")
      .rawField("grids", grids.str())
      .rawField("sharded", sharded)
      .rawField("attached", attached)
      .rawField("collapse", collapse);
  if (bench::writeTextFile(path, root.str())) {
    bench::printKV("json artifact", path);
  }
}

void verifyGrid() {
  bench::printHeader("Experiment engine",
                     "serial vs parallel vs memoized matrix computation");
  const auto prog = gridProgram();
  const auto inputs = gridInputs(prog, kGridInputs);
  const auto model =
      exp::PlatformRegistry::instance().make("inorder-lru", prog,
                                             gridOptions());

  exp::ExperimentEngine serial(exp::EngineConfig{1});
  exp::ExperimentEngine parallel(exp::EngineConfig{0});
  const auto mNaive = naiveSerialMatrix(*model, prog, inputs);
  const auto mSerial = serial.computeMatrix(*model, prog, inputs);
  const auto mParallel = parallel.computeMatrix(*model, prog, inputs);

  bench::printKV("grid", std::to_string(kGridStates) + " states x " +
                             std::to_string(kGridInputs) + " inputs");
  bench::printKV("worker threads (parallel path)",
                 std::to_string(parallel.resolvedThreads()));
  bench::printKV("parallel == serial (bit-identical)",
                 mSerial == mParallel ? "yes" : "NO (BUG)");
  bench::printKV("memoized == naive (same matrix)",
                 mSerial == mNaive ? "yes" : "NO (BUG)");
  bench::printKV("functional runs, naive path",
                 std::to_string(kGridStates * kGridInputs));
  bench::printKV("functional runs, memoized path",
                 std::to_string(serial.traceStore().misses()));
}

void BM_NaiveSerial(benchmark::State& state) {
  const auto prog = gridProgram();
  const auto inputs = gridInputs(prog, static_cast<int>(state.range(0)));
  auto opts = gridOptions();
  opts.numStates = static_cast<int>(state.range(0));
  const auto model =
      exp::PlatformRegistry::instance().make("inorder-lru", prog, opts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(naiveSerialMatrix(*model, prog, inputs).wcet());
  }
}
BENCHMARK(BM_NaiveSerial)->Arg(16)->Arg(32);

void BM_MemoizedSerial(benchmark::State& state) {
  const auto prog = gridProgram();
  const auto inputs = gridInputs(prog, static_cast<int>(state.range(0)));
  auto opts = gridOptions();
  opts.numStates = static_cast<int>(state.range(0));
  const auto model =
      exp::PlatformRegistry::instance().make("inorder-lru", prog, opts);
  for (auto _ : state) {
    exp::ExperimentEngine engine(exp::EngineConfig{1});
    benchmark::DoNotOptimize(
        engine.computeMatrix(*model, prog, inputs).wcet());
  }
}
BENCHMARK(BM_MemoizedSerial)->Arg(16)->Arg(32);

void BM_MemoizedParallel(benchmark::State& state) {
  const auto prog = gridProgram();
  const auto inputs = gridInputs(prog, static_cast<int>(state.range(0)));
  auto opts = gridOptions();
  opts.numStates = static_cast<int>(state.range(0));
  const auto model =
      exp::PlatformRegistry::instance().make("inorder-lru", prog, opts);
  for (auto _ : state) {
    exp::ExperimentEngine engine(exp::EngineConfig{0});
    benchmark::DoNotOptimize(
        engine.computeMatrix(*model, prog, inputs).wcet());
  }
}
BENCHMARK(BM_MemoizedParallel)->Arg(16)->Arg(32);

/// Whole-grid view: a scenario sweep re-timing one workload on several
/// platforms, sharing traces across all of them through one engine.
void BM_ScenarioSweep(benchmark::State& state) {
  const auto prog = gridProgram();
  const auto inputs = gridInputs(prog, 8);
  for (auto _ : state) {
    study::ScenarioSuite suite;
    suite.addWorkload("linearSearch", prog, inputs);
    exp::PlatformOptions opts;
    opts.numStates = 8;
    suite.addPlatform("inorder-lru", opts);
    suite.addPlatform("inorder-fifo", opts);
    suite.addPlatform("ooo-lru", opts);
    suite.addPlatform("pret", opts);
    exp::ExperimentEngine engine;
    benchmark::DoNotOptimize(suite.run(engine).size());
  }
}
BENCHMARK(BM_ScenarioSweep);

}  // namespace

int main(int argc, char** argv) {
  verifyGrid();
  perfGrid(argc > 0 ? argv[0] : nullptr);
  return pred::bench::runBenchmarks(argc, argv);
}
