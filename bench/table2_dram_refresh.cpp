// table2_dram_refresh.cpp — Experiment E14: Table 2, row 5.
//
// Predictable DRAM refresh (Bhat & Mueller [4]).  Property: latency of
// DRAM accesses.  Uncertainty: occurrence of refreshes.  Quality measure:
// variability in latencies — zero with burst refresh (the refresh cost
// moves into a schedulable periodic task).

#include "bench_common.h"
#include "core/measures.h"
#include "core/report.h"
#include "dram/refresh.h"
#include "study/catalog.h"

namespace {

using namespace pred;
using dram::Cycles;

void runRow() {
  bench::printHeader("Table 2, row 5", "predictable DRAM refresh");

  // The refresh-latency measure lives on the DRAM substrate — the catalog
  // row is declarative-only.
  bench::printInstance(study::catalog::row("Burst DRAM refresh"));

  dram::DramDevice device(dram::DramGeometry{}, dram::DramTiming{});

  core::TextTable t({"access period", "scheme", "min latency", "max latency",
                     "variability", "refreshes hit", "burst budget"});
  for (Cycles period : {31, 97, 311}) {
    std::vector<Cycles> arrivals;
    std::vector<std::int64_t> addrs;
    for (int k = 0; k < 400; ++k) {
      arrivals.push_back(static_cast<Cycles>(k) * period);
      addrs.push_back(k * 256);
    }
    for (const auto scheme :
         {dram::RefreshScheme::Distributed, dram::RefreshScheme::Burst}) {
      const auto r = dram::runWithRefresh(device, scheme, arrivals, addrs);
      const auto s = core::computeStats(r.accessLatencies);
      t.addRow({std::to_string(period),
                scheme == dram::RefreshScheme::Distributed ? "distributed"
                                                           : "burst",
                core::fmt(s.minimum, 0), core::fmt(s.maximum, 0),
                core::fmt(s.range(), 0),
                std::to_string(r.refreshesDuringTask),
                scheme == dram::RefreshScheme::Burst
                    ? std::to_string(r.burstBudget) + " cy/period"
                    : "-"});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "shape reproduced: distributed refresh injects tRFC-sized latency\n"
      "spikes at analysis-invisible instants; burst refresh makes every\n"
      "access latency constant and surfaces the refresh cost as an explicit\n"
      "schedulable budget (WCET analysis can ignore refreshes).\n");
}

void BM_RefreshRun(benchmark::State& state) {
  dram::DramDevice device(dram::DramGeometry{}, dram::DramTiming{});
  std::vector<Cycles> arrivals;
  std::vector<std::int64_t> addrs;
  for (int k = 0; k < 400; ++k) {
    arrivals.push_back(static_cast<Cycles>(k) * 97);
    addrs.push_back(k * 256);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dram::runWithRefresh(
        device, dram::RefreshScheme::Distributed, arrivals, addrs));
  }
}
BENCHMARK(BM_RefreshRun);

}  // namespace

int main(int argc, char** argv) {
  runRow();
  return pred::bench::runBenchmarks(argc, argv);
}
