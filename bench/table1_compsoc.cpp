// table1_compsoc.cpp — Experiment E6: Table 1, row 4.
//
// CoMPSoC (Hansson et al. [9]): composable and predictable MPSoC.
// Property: memory access / communication latency.  Uncertainty: concurrent
// execution of unknown other applications.  Quality measure: variability in
// latencies — zero (trace-identical) under TDM, unbounded growth under
// FCFS/round-robin.

#include "bench_common.h"
#include "core/report.h"
#include "noc/composability.h"
#include "study/catalog.h"

namespace {

using namespace pred;
using noc::Cycles;

std::vector<std::vector<noc::NocRequest>> scenarios() {
  std::vector<std::vector<noc::NocRequest>> out;
  out.push_back({});  // no co-runners
  out.push_back(noc::periodicStream(1, 0, 9, 40));
  out.push_back(noc::burstyStream(1, 2, 60, 10, 8));
  {
    auto v = noc::periodicStream(1, 0, 1, 150);
    auto w = noc::periodicStream(2, 0, 1, 150);
    auto x = noc::periodicStream(3, 0, 1, 150);
    v.insert(v.end(), w.begin(), w.end());
    v.insert(v.end(), x.begin(), x.end());
    out.push_back(std::move(v));  // saturating
  }
  return out;
}

void runRow() {
  bench::printHeader("Table 1, row 4", "CoMPSoC: composable MPSoC template");

  // The row's latency substrate is the NoC, not a Q x I timing matrix — the
  // catalog row is declarative-only and the quality measure is evaluated on
  // the shared-resource model directly.
  bench::printInstance(study::catalog::row("CoMPSoC"));

  noc::SharedResource res(4, 3);
  const auto observed = noc::periodicStream(0, 5, 13, 40);
  const auto scen = scenarios();

  core::TextTable t({"arbiter", "composable (trace-identical)",
                     "max per-request deviation",
                     "worst latency across scenarios"});
  auto addRow = [&](const noc::Arbiter& arb) {
    const auto rep = noc::checkComposability(res, arb, 0, observed, scen);
    Cycles worst = 0;
    for (const auto w : rep.worstLatencyPerScenario) worst = std::max(worst, w);
    t.addRow({arb.name(), rep.composable ? "yes" : "no",
              std::to_string(rep.maxDeviation), std::to_string(worst)});
  };
  noc::TdmArbiter tdm({0, 1, 2, 3});
  noc::FcfsArbiter fcfs;
  noc::RoundRobinArbiter rr;
  noc::FixedPriorityArbiter fp;
  addRow(tdm);
  addRow(fcfs);
  addRow(rr);
  addRow(fp);
  std::printf("%s", t.render().c_str());
  std::printf(
      "shape reproduced: TDM arbitration is composable — the observed\n"
      "application's latency trace is bit-identical no matter what the\n"
      "co-running applications do; work-conserving arbiters are not.\n"
      "(Fixed priority is composable only for the top-priority client.)\n");
}

void BM_TdmArbitration(benchmark::State& state) {
  noc::SharedResource res(4, 3);
  auto all = noc::periodicStream(0, 5, 13, 40);
  for (int c = 1; c < 4; ++c) {
    auto s = noc::periodicStream(c, 0, 2, 100);
    all.insert(all.end(), s.begin(), s.end());
  }
  for (auto _ : state) {
    noc::TdmArbiter tdm({0, 1, 2, 3});
    benchmark::DoNotOptimize(res.run(tdm, all));
  }
}
BENCHMARK(BM_TdmArbitration);

}  // namespace

int main(int argc, char** argv) {
  runRow();
  return pred::bench::runBenchmarks(argc, argv);
}
