// table2_method_cache.cpp — Experiment E10: Table 2, row 1.
//
// Method cache (Schoeberl [23]; Metzlaff et al. [15]).  Property: memory
// access time.  Uncertainty: initial cache state.  Quality measure:
// simplicity of analysis — the number of program points at which a miss
// can occur collapses from "every instruction" (conventional I-cache) to
// "call/return sites".
//
// The simulation loops live in src/cache (compareMethodCacheAgainstICache);
// the catalog row additionally binds the timing view: the same call-heavy
// workload queried on "inorder-lru-icache" shows the I-cache-state-induced
// execution-time variability the method cache removes by construction.

#include "bench_common.h"
#include "cache/method_cache.h"
#include "core/report.h"
#include "study/catalog.h"
#include "study/query.h"

namespace {

using namespace pred;

void runRow() {
  bench::printHeader("Table 2, row 1", "method cache / function scratchpad");

  const auto& inst = study::catalog::row("Method cache");
  bench::printInstance(inst);

  const auto w = study::WorkloadRegistry::instance().make(inst.spec.workload);
  exp::ExperimentEngine engine;
  const auto& trace = engine.traceStore().traceFor(w.program, w.inputs[0]);

  const auto cmp = cache::compareMethodCacheAgainstICache(
      w.program, trace, /*capacityInstrs=*/96,
      cache::MethodCacheTiming{0, 4, 1}, cache::CacheGeometry{4, 8, 2},
      cache::Policy::LRU, cache::CacheTiming{0, 8});

  core::TextTable t({"design", "potential miss points (static)",
                     "misses (measured)", "stall cycles"});
  t.addRow({"method cache", std::to_string(cmp.methodMissPoints),
            std::to_string(cmp.methodCacheMisses),
            std::to_string(cmp.methodCacheStallCycles)});
  t.addRow({"conventional I-cache", std::to_string(cmp.icacheMissPoints),
            std::to_string(cmp.icacheMisses),
            std::to_string(cmp.icacheStallCycles)});
  std::printf("%s", t.render().c_str());
  bench::printKV("miss-point reduction",
                 core::fmt(static_cast<double>(cmp.icacheMissPoints) /
                               static_cast<double>(cmp.methodMissPoints),
                           1) + "x fewer program points to analyze");

  // Timing view via the catalog binding: I-cache state in the Q axis.
  const auto finding = study::compile(inst.spec).run(engine);
  bench::printKV("SIPr over initial I-cache states (" + finding.platform +
                     ")",
                 core::fmt(finding.sipr.value, 4));
  std::printf(
      "shape reproduced: with the method cache an analysis must consider\n"
      "cache behavior only at call/return sites (every other fetch is a\n"
      "guaranteed hit: the executing function is resident by construction).\n");
}

void BM_MethodCache(benchmark::State& state) {
  const auto w =
      study::WorkloadRegistry::instance().make("callroundrobin-8x6x4");
  const auto trace = isa::FunctionalCore::run(w.program, w.inputs[0]).trace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache::compareMethodCacheAgainstICache(
        w.program, trace, 96, cache::MethodCacheTiming{},
        cache::CacheGeometry{4, 8, 2}, cache::Policy::LRU,
        cache::CacheTiming{0, 8}));
  }
}
BENCHMARK(BM_MethodCache);

}  // namespace

int main(int argc, char** argv) {
  runRow();
  return pred::bench::runBenchmarks(argc, argv);
}
