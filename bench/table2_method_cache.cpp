// table2_method_cache.cpp — Experiment E10: Table 2, row 1.
//
// Method cache (Schoeberl [23]; Metzlaff et al. [15]).  Property: memory
// access time.  Uncertainty: initial cache state.  Quality measure:
// simplicity of analysis — the number of program points at which a miss
// can occur collapses from "every instruction" (conventional I-cache) to
// "call/return sites".

#include "bench_common.h"
#include "cache/method_cache.h"
#include "cache/set_assoc.h"
#include "core/report.h"
#include "isa/ast.h"
#include "isa/exec.h"
#include "isa/workloads.h"

namespace {

using namespace pred;
using cache::Cycles;

void runRow() {
  bench::printHeader("Table 2, row 1", "method cache / function scratchpad");

  core::PredictabilityInstance inst;
  inst.approach = "Method cache";
  inst.hardwareUnit = "Memory hierarchy";
  inst.property = core::Property::MemoryAccessLatency;
  inst.uncertainties = {core::Uncertainty::InitialCacheState};
  inst.measure = core::MeasureKind::AnalysisSimplicity;
  inst.citation = "[23,15]";
  bench::printInstance(inst);

  const auto prog =
      isa::ast::compileBranchy(isa::workloads::callRoundRobin(8, 6, 4));
  const auto trace = isa::FunctionalCore::run(prog, isa::Input{}).trace;

  // Method cache run: misses only at call/return.
  cache::MethodCache mc(96, cache::MethodCacheTiming{0, 4, 1});
  Cycles mcStall = 0;
  for (const auto& rec : trace) {
    if (rec.instr.op == isa::Op::CALL || rec.instr.op == isa::Op::RET) {
      if (const auto fn = prog.functionAt(rec.nextPc)) {
        mcStall += mc.onEnter(fn->entry, fn->size());
      }
    }
  }

  // Conventional I-cache run: every fetch goes through the cache.
  cache::SetAssocCache ic(cache::CacheGeometry{4, 8, 2}, cache::Policy::LRU,
                          cache::CacheTiming{0, 8});
  Cycles icStall = 0;
  for (const auto& rec : trace) icStall += ic.access(rec.pc).latency;

  // Static analysis-simplicity proxy: potential miss points.
  std::uint64_t callRetSites = 0;
  for (const auto& ins : prog.code) {
    if (ins.op == isa::Op::CALL || ins.op == isa::Op::RET) ++callRetSites;
  }

  core::TextTable t({"design", "potential miss points (static)",
                     "misses (measured)", "stall cycles"});
  t.addRow({"method cache", std::to_string(callRetSites),
            std::to_string(mc.misses()), std::to_string(mcStall)});
  t.addRow({"conventional I-cache", std::to_string(prog.size()),
            std::to_string(ic.misses()), std::to_string(icStall)});
  std::printf("%s", t.render().c_str());
  bench::printKV("miss-point reduction",
                 core::fmt(static_cast<double>(prog.size()) /
                               static_cast<double>(callRetSites),
                           1) + "x fewer program points to analyze");
  std::printf(
      "shape reproduced: with the method cache an analysis must consider\n"
      "cache behavior only at call/return sites (every other fetch is a\n"
      "guaranteed hit: the executing function is resident by construction).\n");
}

void BM_MethodCache(benchmark::State& state) {
  const auto prog =
      isa::ast::compileBranchy(isa::workloads::callRoundRobin(8, 6, 4));
  const auto trace = isa::FunctionalCore::run(prog, isa::Input{}).trace;
  for (auto _ : state) {
    cache::MethodCache mc(96, cache::MethodCacheTiming{});
    Cycles stall = 0;
    for (const auto& rec : trace) {
      if (rec.instr.op == isa::Op::CALL || rec.instr.op == isa::Op::RET) {
        if (const auto fn = prog.functionAt(rec.nextPc)) {
          stall += mc.onEnter(fn->entry, fn->size());
        }
      }
    }
    benchmark::DoNotOptimize(stall);
  }
}
BENCHMARK(BM_MethodCache);

}  // namespace

int main(int argc, char** argv) {
  runRow();
  return pred::bench::runBenchmarks(argc, argv);
}
