// table2_single_path.cpp — Experiment E15: Table 2, row 6.
//
// The single-path paradigm (Puschner & Burns [19]).  Property: execution
// time.  Uncertainty: program inputs.  Quality measure: variability in
// execution times — the single-path compilation of the same source has
// IIPr = 1 (identical trace for every input), at a mean-performance cost.
//
// On the study API each comparison is a pair of queries: the branchy
// workload preset vs its "-sp" single-path sibling (same source, same
// inputs), on a |Q| = 1 uniform-latency in-order platform that isolates
// path effects.

#include "bench_common.h"
#include "core/measures.h"
#include "core/report.h"
#include "isa/singlepath.h"
#include "isa/workloads.h"
#include "study/catalog.h"
#include "study/query.h"

namespace {

using namespace pred;

void runRow() {
  bench::printHeader("Table 2, row 6", "single-path paradigm");

  const auto& inst = study::catalog::row("Single-path");
  bench::printInstance(inst);

  // Scratchpad-like uniform memory timing and constant-duration DIV (as
  // [28] would) to isolate path effects; |Q| = 1.
  exp::PlatformOptions opts;
  opts.numStates = 1;
  opts.dataTiming = cache::CacheTiming{2, 2};
  opts.inorder.constantDiv = true;

  exp::ExperimentEngine engine;
  core::TextTable t({"workload", "compilation", "BCET", "WCET",
                     "IIPr (Def. 5)", "mean time"});
  for (const char* base :
       {"linearsearch-12", "bubblesort-8", "branchtree-5"}) {
    for (const bool singlePath : {false, true}) {
      const std::string workload =
          singlePath ? std::string(base) + "-sp" : std::string(base);
      const auto f = study::Query()
                         .workload(workload)
                         .platform("inorder-lru", opts)
                         .measures({study::Measure::IIPr})
                         .keepMatrix()
                         .run(engine);
      const auto stats = core::computeStats(f.matrix->values());
      t.addRow({base, singlePath ? "single-path" : "branchy",
                std::to_string(f.bcet), std::to_string(f.wcet),
                core::fmt(f.iipr.value, 4), core::fmt(stats.mean, 1)});
    }
    t.addRule();
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "shape reproduced: single-path code has IIPr = 1 — its execution time\n"
      "is a constant function of the input — while the branchy compilation\n"
      "varies; the price is a mean slowdown (all branches always execute).\n");
}

void BM_SinglePathCompile(benchmark::State& state) {
  const auto ast = isa::workloads::bubbleSort(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::ast::compileSinglePath(ast));
  }
}
BENCHMARK(BM_SinglePathCompile);

}  // namespace

int main(int argc, char** argv) {
  runRow();
  return pred::bench::runBenchmarks(argc, argv);
}
