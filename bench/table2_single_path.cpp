// table2_single_path.cpp — Experiment E15: Table 2, row 6.
//
// The single-path paradigm (Puschner & Burns [19]).  Property: execution
// time.  Uncertainty: program inputs.  Quality measure: variability in
// execution times — the single-path compilation of the same source has
// IIPr = 1 (identical trace for every input), at a mean-performance cost.

#include "analysis/exhaustive.h"
#include "bench_common.h"
#include "core/definitions.h"
#include "core/measures.h"
#include "core/report.h"
#include "isa/singlepath.h"
#include "isa/workloads.h"

namespace {

using namespace pred;

void runRow() {
  bench::printHeader("Table 2, row 6", "single-path paradigm");

  core::PredictabilityInstance inst;
  inst.approach = "Single-path code generation";
  inst.hardwareUnit = "Software-based (compiler)";
  inst.property = core::Property::ExecutionTime;
  inst.uncertainties = {core::Uncertainty::ProgramInput};
  inst.measure = core::MeasureKind::Range;
  inst.citation = "[19]";
  bench::printInstance(inst);

  struct W {
    std::string name;
    isa::ast::AstProgram ast;
    std::string arrayName;
    std::int64_t len;
  };
  const W workloads[] = {
      {"linearSearch(12)", isa::workloads::linearSearch(12), "a", 12},
      {"bubbleSort(8)", isa::workloads::bubbleSort(8), "a", 8},
      {"branchTree(5)", isa::workloads::branchTree(5), "", 0},
  };

  core::TextTable t({"workload", "compilation", "BCET", "WCET",
                     "IIPr (Def. 5)", "mean time"});
  for (const auto& w : workloads) {
    for (const bool singlePath : {false, true}) {
      const auto prog = singlePath ? isa::ast::compileSinglePath(w.ast)
                                   : isa::ast::compileBranchy(w.ast);
      std::vector<isa::Input> inputs{isa::Input{}};
      if (!w.arrayName.empty()) {
        inputs = isa::workloads::randomArrayInputs(prog, w.arrayName, w.len,
                                                   12, 31, 24);
        if (prog.variables.count("key")) {
          for (auto& in : inputs) {
            in = isa::mergeInputs(in, isa::varInput(prog, "key", 7));
          }
        }
      } else {
        // branchTree: drive the x0..x4 inputs through corners.
        for (int mask = 0; mask < 12; ++mask) {
          isa::Input in;
          for (int d = 0; d < 5; ++d) {
            in = isa::mergeInputs(
                in, isa::varInput(prog, "x" + std::to_string(d),
                                  (mask >> (d % 4)) & 1 ? 20 : 0));
          }
          inputs.push_back(in);
        }
      }
      pipeline::InOrderConfig cfg;
      cfg.constantDiv = true;  // isolate path effects (as [28] would)
      const auto setup = analysis::exhaustiveInOrder(
          prog, inputs, cache::CacheGeometry{4, 8, 2}, cache::Policy::LRU,
          cache::CacheTiming{2, 2}, 1, 5, cfg);  // scratchpad-like timing
      const auto ii = core::inputInducedPredictability(setup.matrix);
      const auto stats = core::computeStats(setup.matrix.values());
      t.addRow({w.name, singlePath ? "single-path" : "branchy",
                std::to_string(setup.matrix.bcet()),
                std::to_string(setup.matrix.wcet()),
                core::fmt(ii.value, 4), core::fmt(stats.mean, 1)});
    }
    t.addRule();
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "shape reproduced: single-path code has IIPr = 1 — its execution time\n"
      "is a constant function of the input — while the branchy compilation\n"
      "varies; the price is a mean slowdown (all branches always execute).\n");
}

void BM_SinglePathCompile(benchmark::State& state) {
  const auto ast = isa::workloads::bubbleSort(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::ast::compileSinglePath(ast));
  }
}
BENCHMARK(BM_SinglePathCompile);

}  // namespace

int main(int argc, char** argv) {
  runRow();
  return pred::bench::runBenchmarks(argc, argv);
}
