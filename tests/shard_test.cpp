// shard_test.cpp — The gate for the process-sharded grid substrate
// (exp/shard.h): for any shard count and any shard shape, merging shard
// accumulators must reproduce the single-process reduceCells result
// value-for-value AND witness-for-witness — distribution cannot change a
// witness, because the smallest-index tie-break makes the merge
// order-independent.  Plus the wire formats both sides of a process
// boundary depend on: ShardSpec and StreamingMeasures round-trips, and
// strict parse errors on malformed input.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/measures.h"
#include "exp/engine.h"
#include "exp/platform.h"
#include "exp/shard.h"
#include "study/query.h"
#include "study/workloads.h"
#include "witness_expect.h"

namespace pred {
namespace {

using core::StreamingMeasures;
using exp::ShardSpec;

/// One grid configuration the identity matrix below sweeps: a registry
/// platform x workload pair plus options.  Covers a packed OOO preset, an
/// in-order preset, and a non-power-of-two cache geometry (the packed
/// sim's division fallback).
struct GridCase {
  const char* label;
  const char* platform;
  const char* workload;
  exp::PlatformOptions options;
};

std::vector<GridCase> gridCases() {
  exp::PlatformOptions dflt;
  dflt.numStates = 8;

  exp::PlatformOptions nonPow2;
  nonPow2.numStates = 6;
  nonPow2.dataGeom = cache::CacheGeometry{3, 5, 2};  // non-pow2 line & sets

  return {
      {"ooo-packed", "ooo-fifo", "bubblesort-8", dflt},
      {"inorder", "inorder-lru", "linearsearch-12", dflt},
      {"inorder-nonpow2-geom", "inorder-lru", "bubblesort-8", nonPow2},
  };
}

ShardSpec wholeSpecFor(const GridCase& c, std::size_t nQ, std::size_t nI) {
  ShardSpec whole;
  whole.platform = c.platform;
  whole.workload = c.workload;
  whole.options = c.options;
  whole.qEnd = nQ;
  whole.iEnd = nI;
  return whole;
}

TEST(ShardIdentity, MergedShardsEqualSingleProcessForAnyShardCount) {
  for (const auto& c : gridCases()) {
    const auto w = study::WorkloadRegistry::instance().make(c.workload);
    const auto model = exp::PlatformRegistry::instance().make(
        c.platform, w.program, c.options);
    exp::ExperimentEngine engine;
    const auto single = engine.reduceCells(*model, w.program, w.inputs);

    const auto whole =
        wholeSpecFor(c, model->numStates(), w.inputs.size());
    for (const std::size_t k : {1u, 2u, 3u, 8u}) {
      const auto plan = exp::planShards(whole, k);
      std::vector<StreamingMeasures> parts;
      for (const auto& s : plan) {
        parts.push_back(exp::evaluateShard(s, w.program, w.inputs));
      }
      const auto merged =
          exp::ExperimentEngine::mergeShards(std::move(parts));
      const std::string label =
          std::string(c.label) + " k=" + std::to_string(k);
      // Bit-for-bit accumulator identity subsumes value and witness
      // identity of every derived measure...
      EXPECT_TRUE(merged.identicalTo(single)) << label;
      EXPECT_EQ(merged.serialize(), single.serialize()) << label;
      // ...but assert the paper-facing quantities explicitly too.
      EXPECT_EQ(merged.bcet(), single.bcet()) << label;
      EXPECT_EQ(merged.wcet(), single.wcet()) << label;
      expectSamePredictabilityValue(merged.pr(), single.pr(), label);
      expectSamePredictabilityValue(merged.sipr(), single.sipr(), label);
      expectSamePredictabilityValue(merged.iipr(), single.iipr(), label);
    }
  }
}

TEST(ShardIdentity, CollapsedShardsMergeToUncollapsedSingleProcessBytes) {
  // The duplicate-heavy grid (64 inputs, 16 trace classes) sharded with
  // collapse ON must merge to the exact bytes of a single-process
  // UNCOLLAPSED evaluation: collapse is a scheduling detail, invisible
  // across the process boundary.  Shards group by class within their own
  // input range but attribute through global indices, so even shards that
  // pick different representatives of the same class stay byte-exact.
  const auto w =
      study::WorkloadRegistry::instance().make("linearsearch-16x64-dup");
  exp::PlatformOptions opts;
  opts.numStates = 8;
  const auto model =
      exp::PlatformRegistry::instance().make("ooo-fifo", w.program, opts);

  exp::EngineConfig uncollapsed;
  uncollapsed.collapseTraceClasses = false;
  exp::ExperimentEngine reference(uncollapsed);
  const auto single = reference.reduceCells(*model, w.program, w.inputs);

  ShardSpec whole;
  whole.platform = "ooo-fifo";
  whole.workload = "linearsearch-16x64-dup";
  whole.options = opts;
  whole.qEnd = model->numStates();
  whole.iEnd = w.inputs.size();
  whole.engine.collapseTraceClasses = true;

  for (const std::size_t k : {1u, 3u, 5u, 8u}) {
    const auto plan = exp::planShards(whole, k);
    std::vector<StreamingMeasures> parts;
    for (const auto& s : plan) {
      ASSERT_TRUE(s.engine.collapseTraceClasses);
      parts.push_back(exp::evaluateShard(s, w.program, w.inputs));
    }
    const auto merged =
        exp::ExperimentEngine::mergeShards(std::move(parts));
    const std::string label = "dup-grid k=" + std::to_string(k);
    EXPECT_TRUE(merged.identicalTo(single)) << label;
    EXPECT_EQ(merged.serialize(), single.serialize()) << label;
  }
}

TEST(ShardIdentity, MergeIsOrderIndependent) {
  const auto c = gridCases()[0];
  const auto w = study::WorkloadRegistry::instance().make(c.workload);
  const auto model = exp::PlatformRegistry::instance().make(
      c.platform, w.program, c.options);
  exp::ExperimentEngine engine;
  const auto single = engine.reduceCells(*model, w.program, w.inputs);

  const auto plan = exp::planShards(
      wholeSpecFor(c, model->numStates(), w.inputs.size()), 8);
  std::vector<StreamingMeasures> parts;
  for (const auto& s : plan) {
    parts.push_back(exp::evaluateShard(s, w.program, w.inputs));
  }
  // Reversed and shuffled merge orders both reproduce the reference.
  std::vector<StreamingMeasures> reversed(parts.rbegin(), parts.rend());
  EXPECT_TRUE(exp::ExperimentEngine::mergeShards(std::move(reversed))
                  .identicalTo(single));
  std::mt19937 rng(7);
  std::shuffle(parts.begin(), parts.end(), rng);
  EXPECT_TRUE(exp::ExperimentEngine::mergeShards(std::move(parts))
                  .identicalTo(single));
}

TEST(ShardIdentity, QueryRunShardedMatchesRun) {
  exp::ExperimentEngine engine;
  const auto query = study::Query()
                         .workload("bubblesort-8")
                         .platform("ooo-fifo")
                         .mode(study::Exhaustive{});
  const auto reference = query.run(engine);
  for (const std::size_t k : {1u, 2u, 3u, 8u}) {
    const auto sharded = query.runSharded(engine, k);
    const std::string label = "k=" + std::to_string(k);
    EXPECT_EQ(sharded.workload, reference.workload) << label;
    EXPECT_EQ(sharded.platform, reference.platform) << label;
    EXPECT_EQ(sharded.numStates, reference.numStates) << label;
    EXPECT_EQ(sharded.numInputs, reference.numInputs) << label;
    EXPECT_EQ(sharded.bcet, reference.bcet) << label;
    EXPECT_EQ(sharded.wcet, reference.wcet) << label;
    EXPECT_EQ(sharded.stateLabels, reference.stateLabels) << label;
    expectSamePredictabilityValue(sharded.pr, reference.pr, label);
    expectSamePredictabilityValue(sharded.sipr, reference.sipr, label);
    expectSamePredictabilityValue(sharded.iipr, reference.iipr, label);
  }
}

TEST(ShardPlan, CoversTheGridDisjointlySmallestIndexFirst) {
  ShardSpec whole;
  whole.platform = "inorder-lru";
  whole.workload = "bubblesort-8";
  whole.qEnd = 7;
  whole.iEnd = 5;
  for (const std::size_t k : {1u, 2u, 3u, 6u, 7u, 8u, 20u, 35u, 99u}) {
    const auto plan = exp::planShards(whole, k);
    // Requested counts beyond the cell count clamp; counts within it are
    // honored exactly.
    EXPECT_EQ(plan.size(), std::min<std::size_t>(k, 35)) << k;
    std::vector<int> covered(7 * 5, 0);
    for (const auto& s : plan) {
      EXPECT_EQ(s.platform, whole.platform);
      EXPECT_EQ(s.workload, whole.workload);
      ASSERT_LT(s.qBegin, s.qEnd) << k;
      ASSERT_LE(s.qEnd, 7u) << k;
      ASSERT_LT(s.iBegin, s.iEnd) << k;
      ASSERT_LE(s.iEnd, 5u) << k;
      for (std::size_t q = s.qBegin; q < s.qEnd; ++q) {
        for (std::size_t i = s.iBegin; i < s.iEnd; ++i) {
          ++covered[q * 5 + i];
        }
      }
    }
    for (const int c : covered) EXPECT_EQ(c, 1) << k;
    // Smallest-index-first emission: ascending (qBegin, iBegin).
    for (std::size_t s = 1; s < plan.size(); ++s) {
      const bool ascending =
          plan[s - 1].qBegin < plan[s].qBegin ||
          (plan[s - 1].qBegin == plan[s].qBegin &&
           plan[s - 1].iBegin < plan[s].iBegin);
      EXPECT_TRUE(ascending) << k;
    }
  }
  ShardSpec empty = whole;
  empty.qEnd = 0;
  EXPECT_THROW(exp::planShards(empty, 4), std::invalid_argument);
}

TEST(ShardPlan, EdgeCountsClampWithoutLosingExactCover) {
  ShardSpec whole;
  whole.platform = "inorder-lru";
  whole.workload = "bubblesort-8";
  whole.qEnd = 7;
  whole.iEnd = 5;

  // count == 0 clamps up to one shard: the whole grid, untouched.
  const auto zero = exp::planShards(whole, 0);
  ASSERT_EQ(zero.size(), 1u);
  EXPECT_EQ(zero[0].qBegin, 0u);
  EXPECT_EQ(zero[0].qEnd, 7u);
  EXPECT_EQ(zero[0].iBegin, 0u);
  EXPECT_EQ(zero[0].iEnd, 5u);

  // count > |Q| switches to per-state input splits — every shard is a
  // single-state band, and a non-divisible count (11 over 7 states, 17
  // over 7) still covers each cell exactly once.
  for (const std::size_t k : {11u, 17u}) {
    const auto plan = exp::planShards(whole, k);
    EXPECT_EQ(plan.size(), k);
    std::vector<int> covered(7 * 5, 0);
    for (const auto& s : plan) {
      EXPECT_EQ(s.qEnd - s.qBegin, 1u) << k;  // one state per shard
      for (std::size_t q = s.qBegin; q < s.qEnd; ++q) {
        for (std::size_t i = s.iBegin; i < s.iEnd; ++i) {
          ++covered[q * 5 + i];
        }
      }
    }
    for (const int c : covered) EXPECT_EQ(c, 1) << k;
  }

  // count == cells: 35 single-cell shards, still an exact disjoint cover.
  const auto cells = exp::planShards(whole, 35);
  EXPECT_EQ(cells.size(), 35u);
  std::vector<int> covered(7 * 5, 0);
  for (const auto& s : cells) {
    EXPECT_EQ((s.qEnd - s.qBegin) * (s.iEnd - s.iBegin), 1u);
    ++covered[s.qBegin * 5 + s.iBegin];
  }
  for (const int c : covered) EXPECT_EQ(c, 1);

  // A sub-rectangle (non-zero begins) splits within its own bounds.
  ShardSpec sub = whole;
  sub.qBegin = 2;
  sub.qEnd = 6;
  sub.iBegin = 1;
  sub.iEnd = 4;
  const auto subPlan = exp::planShards(sub, 3);
  ASSERT_EQ(subPlan.size(), 3u);
  std::vector<int> subCovered(7 * 5, 0);
  for (const auto& s : subPlan) {
    ASSERT_GE(s.qBegin, 2u);
    ASSERT_LE(s.qEnd, 6u);
    ASSERT_GE(s.iBegin, 1u);
    ASSERT_LE(s.iEnd, 4u);
    for (std::size_t q = s.qBegin; q < s.qEnd; ++q) {
      for (std::size_t i = s.iBegin; i < s.iEnd; ++i) {
        ++subCovered[q * 5 + i];
      }
    }
  }
  for (std::size_t q = 0; q < 7; ++q) {
    for (std::size_t i = 0; i < 5; ++i) {
      const bool inside = q >= 2 && q < 6 && i >= 1 && i < 4;
      EXPECT_EQ(subCovered[q * 5 + i], inside ? 1 : 0) << q << "," << i;
    }
  }
}

TEST(ShardSpecWire, RoundTripsEveryField) {
  ShardSpec spec;
  spec.platform = "ooo-preschedule";
  spec.workload = "divkernel-8";
  spec.qBegin = 3;
  spec.qEnd = 9;
  spec.iBegin = 1;
  spec.iEnd = 6;
  spec.engine.threads = 3;
  spec.engine.tileStates = 2;
  spec.engine.tileInputs = 16;
  spec.engine.usePackedReplay = false;
  spec.options.numStates = 9;
  spec.options.seed = 987654321;
  spec.options.warmAddrSpace = 4096;
  spec.options.dataGeom = cache::CacheGeometry{3, 5, 7};
  spec.options.dataTiming = cache::CacheTiming{2, 17};
  spec.options.instrGeom = cache::CacheGeometry{8, 16, 1};
  spec.options.instrTiming = cache::CacheTiming{0, 9};
  spec.options.inorder.mulLatency = 6;
  spec.options.inorder.constantDiv = true;
  spec.options.ooo.dispatchWidth = 4;
  spec.options.ooo.takenRedirect = 2;
  spec.options.pret.numThreads = 6;
  spec.options.smt.policy = pipeline::SmtPolicy::RoundRobin;
  spec.options.smt.memLatency = 5;
  spec.options.scratchpadLatency = 3;

  const auto text = exp::serializeShardSpec(spec);
  const auto back = exp::parseShardSpec(text);
  // Serialization is deterministic, so a second render proves field
  // equality without a ShardSpec operator==.
  EXPECT_EQ(exp::serializeShardSpec(back), text);
  EXPECT_EQ(back.platform, spec.platform);
  EXPECT_EQ(back.workload, spec.workload);
  EXPECT_EQ(back.qBegin, spec.qBegin);
  EXPECT_EQ(back.qEnd, spec.qEnd);
  EXPECT_EQ(back.iBegin, spec.iBegin);
  EXPECT_EQ(back.iEnd, spec.iEnd);
  EXPECT_EQ(back.engine.threads, spec.engine.threads);
  EXPECT_EQ(back.engine.tileStates, spec.engine.tileStates);
  EXPECT_EQ(back.engine.tileInputs, spec.engine.tileInputs);
  EXPECT_EQ(back.engine.usePackedReplay, spec.engine.usePackedReplay);
  EXPECT_EQ(back.options.seed, spec.options.seed);
  EXPECT_EQ(back.options.warmAddrSpace, spec.options.warmAddrSpace);
  EXPECT_EQ(back.options.dataGeom.lineWords, 3);
  EXPECT_EQ(back.options.dataGeom.numSets, 5);
  EXPECT_EQ(back.options.dataGeom.ways, 7);
  EXPECT_EQ(back.options.dataTiming.missLatency, 17u);
  EXPECT_EQ(back.options.inorder.mulLatency, 6u);
  EXPECT_TRUE(back.options.inorder.constantDiv);
  EXPECT_EQ(back.options.ooo.dispatchWidth, 4);
  EXPECT_EQ(back.options.pret.numThreads, 6);
  EXPECT_EQ(back.options.smt.policy, pipeline::SmtPolicy::RoundRobin);
  EXPECT_EQ(back.options.smt.memLatency, 5u);
  EXPECT_EQ(back.options.scratchpadLatency, 3u);
}

TEST(ShardSpecWire, RejectsMalformedInputWithClearErrors) {
  const auto parse = [](const std::string& text) {
    return exp::parseShardSpec(text);
  };
  const char* kMinimal =
      "pred-shard v1\nplatform p\nworkload w\nq 0 4\ni 0 4\nend\n";
  EXPECT_NO_THROW(parse(kMinimal));

  // Structural damage.
  EXPECT_THROW(parse(""), std::invalid_argument);
  EXPECT_THROW(parse("garbage"), std::invalid_argument);
  EXPECT_THROW(parse("pred-shard v2\nend\n"), std::invalid_argument);
  EXPECT_THROW(parse("pred-shard v1\nplatform p\nworkload w\nq 0 4\n"
                     "i 0 4\n"),  // missing end
               std::invalid_argument);
  EXPECT_THROW(parse(std::string(kMinimal) + "trailing"),
               std::invalid_argument);
  EXPECT_THROW(parse("pred-shard v1\nbogus-key 1\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse("pred-shard v1\nplatform p\nplatform p\nworkload w\n"
                     "q 0 4\ni 0 4\nend\n"),  // duplicate field
               std::invalid_argument);

  // Missing required fields.
  EXPECT_THROW(parse("pred-shard v1\nworkload w\nq 0 4\ni 0 4\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse("pred-shard v1\nplatform p\nq 0 4\ni 0 4\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse("pred-shard v1\nplatform p\nworkload w\ni 0 4\nend\n"),
               std::invalid_argument);

  // Bad ranges and malformed numbers.
  EXPECT_THROW(parse("pred-shard v1\nplatform p\nworkload w\nq 4 4\n"
                     "i 0 4\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse("pred-shard v1\nplatform p\nworkload w\nq 5 2\n"
                     "i 0 4\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse("pred-shard v1\nplatform p\nworkload w\nq 0 4\n"
                     "i 0 -3\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse("pred-shard v1\nplatform p\nworkload w\nq 0 x\n"
                     "i 0 4\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse("pred-shard v1\nplatform p\nworkload w\nq 0 4\n"
                     "i 0 4\nstates 3.5\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse("pred-shard v1\nplatform p\nworkload w\nq 0 4\n"
                     "i 0 4\ndata-geom 0 8 2\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse("pred-shard v1\nplatform p\nworkload w\nq 0 4\n"
                     "i 0 4\nsmt 9 1 1 1 1 0\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse("pred-shard v1\nplatform p\nworkload w\nq 0 4\n"
                     "i 0 4\nengine 0 4 8 2\nend\n"),
               std::invalid_argument);

  // Unserializable names never leave the process.
  ShardSpec bad;
  bad.platform = "has space";
  bad.workload = "w";
  bad.qEnd = bad.iEnd = 1;
  EXPECT_THROW(exp::serializeShardSpec(bad), std::invalid_argument);
  bad.platform = "";
  EXPECT_THROW(exp::serializeShardSpec(bad), std::invalid_argument);
}

TEST(ShardSpecWire, UnknownPresetNamesFailAtEvaluateWithClearErrors) {
  const auto w = study::WorkloadRegistry::instance().make("bubblesort-8");
  ShardSpec spec;
  spec.platform = "no-such-platform";
  spec.workload = "bubblesort-8";
  spec.qEnd = 2;
  spec.iEnd = 2;
  EXPECT_THROW(exp::evaluateShard(spec, w.program, w.inputs),
               std::invalid_argument);
  // Ranges outside the instantiated grid are rejected, not read OOB.
  spec.platform = "inorder-lru";
  spec.qEnd = 10000;
  EXPECT_THROW(exp::evaluateShard(spec, w.program, w.inputs),
               std::invalid_argument);
  spec.qEnd = 2;
  spec.iEnd = w.inputs.size() + 1;
  EXPECT_THROW(exp::evaluateShard(spec, w.program, w.inputs),
               std::invalid_argument);
}

TEST(ShardPlanQuery, RequiresShardableQueries) {
  exp::ExperimentEngine engine;
  // Inline workloads cannot be named across a process boundary.
  auto w = study::WorkloadRegistry::instance().make("sum-16");
  EXPECT_THROW(study::Query()
                   .workload("inline", w.program, w.inputs)
                   .platform("inorder-lru")
                   .shardPlan(4),
               std::invalid_argument);
  // Sampled mode has no mergeable exhaustive accumulator.
  EXPECT_THROW(study::Query()
                   .workload("bubblesort-8")
                   .platform("inorder-lru")
                   .mode(study::Sampled{16, 1})
                   .shardPlan(4),
               std::invalid_argument);
  // Exactly one platform.
  EXPECT_THROW(study::Query()
                   .workload("bubblesort-8")
                   .platform("inorder-lru")
                   .platform("ooo-fifo")
                   .shardPlan(4),
               std::invalid_argument);
  // Uncertainty subsets restrict the quantified axes; sharding covers the
  // full grid.
  EXPECT_THROW(study::Query()
                   .workload("bubblesort-8")
                   .platform("inorder-lru")
                   .uncertainty({0, 1}, {})
                   .shardPlan(4),
               std::invalid_argument);
  // The happy path serializes: every planned spec survives a wire round
  // trip bit-for-bit.
  const auto plan = study::Query()
                        .workload("bubblesort-8")
                        .platform("ooo-fifo")
                        .shardPlan(3, engine.config());
  ASSERT_EQ(plan.size(), 3u);
  for (const auto& s : plan) {
    const auto text = exp::serializeShardSpec(s);
    EXPECT_EQ(exp::serializeShardSpec(exp::parseShardSpec(text)), text);
  }
}

TEST(MeasuresWire, RoundTripsRandomTiedGrids) {
  std::mt19937_64 rng(20260729);
  for (int round = 0; round < 20; ++round) {
    const std::size_t nQ = 1 + rng() % 9;
    const std::size_t nI = 1 + rng() % 9;
    StreamingMeasures ref(nQ, nI);
    // A tiny value range forces ties, exercising the witness tie-break
    // state the wire format must preserve exactly.
    for (std::size_t q = 0; q < nQ; ++q) {
      for (std::size_t i = 0; i < nI; ++i) {
        ref.add(q, i, 100 + rng() % 3);
      }
    }
    const auto text = ref.serialize();
    const auto back = StreamingMeasures::deserialize(text);
    EXPECT_TRUE(back.identicalTo(ref));
    EXPECT_EQ(back.serialize(), text);
    expectSamePredictabilityValue(back.pr(), ref.pr());
    expectSamePredictabilityValue(back.sipr(), ref.sipr());
    expectSamePredictabilityValue(back.iipr(), ref.iipr());
    EXPECT_EQ(back.cells(), ref.cells());

    // A deserialized PARTIAL accumulator keeps merging correctly: split
    // the same grid in two, ship both halves through text, merge.
    StreamingMeasures lo(nQ, nI), hi(nQ, nI);
    std::mt19937_64 rng2(rng());  // fresh values for the split grid
    StreamingMeasures whole(nQ, nI);
    for (std::size_t q = 0; q < nQ; ++q) {
      for (std::size_t i = 0; i < nI; ++i) {
        const core::Cycles t = 50 + rng2() % 2;
        whole.add(q, i, t);
        (q < nQ / 2 + 1 ? lo : hi).add(q, i, t);
      }
    }
    auto loBack = StreamingMeasures::deserialize(lo.serialize());
    const auto hiBack = StreamingMeasures::deserialize(hi.serialize());
    loBack.merge(hiBack);
    EXPECT_TRUE(loBack.identicalTo(whole));
  }

  // Untouched-entry sentinels round-trip too (an accumulator nothing was
  // fed into, and one with a single cell).
  StreamingMeasures empty(3, 2);
  EXPECT_TRUE(
      StreamingMeasures::deserialize(empty.serialize()).identicalTo(empty));
  StreamingMeasures one(3, 2);
  one.add(2, 1, 42);
  EXPECT_TRUE(
      StreamingMeasures::deserialize(one.serialize()).identicalTo(one));
}

TEST(MeasuresWire, RejectsMalformedInputWithClearErrors) {
  const auto parse = [](const std::string& text) {
    return StreamingMeasures::deserialize(text);
  };
  EXPECT_THROW(parse(""), std::invalid_argument);
  EXPECT_THROW(parse("bogus v1\n"), std::invalid_argument);
  EXPECT_THROW(parse("streaming-measures v2\n"), std::invalid_argument);
  EXPECT_THROW(parse("streaming-measures v1\nshape 2\n"),
               std::invalid_argument);
  EXPECT_THROW(parse("streaming-measures v1\nshape -1 2\ncells 0\nend\n"),
               std::invalid_argument);
  EXPECT_THROW(parse("streaming-measures v1\nshape 99999999999999 2\n"),
               std::invalid_argument);  // implausible shape, no allocation
  // Truncated bodies and label mismatches.
  StreamingMeasures ref(2, 2);
  ref.add(0, 0, 7);
  ref.add(1, 1, 9);
  const auto good = ref.serialize();
  EXPECT_THROW(parse(good.substr(0, good.size() / 2)),
               std::invalid_argument);
  EXPECT_THROW(parse(good + "extra"), std::invalid_argument);
  auto swapped = good;
  const auto pos = swapped.find("\ni ");
  ASSERT_NE(pos, std::string::npos);
  swapped[pos + 1] = 'q';  // axis label mismatch
  EXPECT_THROW(parse(swapped), std::invalid_argument);
  auto bad = good;
  const auto numPos = bad.find("7");
  ASSERT_NE(numPos, std::string::npos);
  bad[numPos] = 'x';
  EXPECT_THROW(parse(bad), std::invalid_argument);
}

TEST(MeasuresWire, MergeShardsValidatesInput) {
  EXPECT_THROW(exp::ExperimentEngine::mergeShards({}),
               std::invalid_argument);
  std::vector<StreamingMeasures> mismatched;
  mismatched.emplace_back(2, 2);
  mismatched.emplace_back(3, 2);
  EXPECT_THROW(exp::ExperimentEngine::mergeShards(std::move(mismatched)),
               std::invalid_argument);
}

TEST(ShardEngine, ReduceCellsRangeValidatesAndKeepsGlobalIndices) {
  const auto w = study::WorkloadRegistry::instance().make("bubblesort-8");
  exp::PlatformOptions options;
  options.numStates = 4;
  const auto model = exp::PlatformRegistry::instance().make(
      "inorder-lru", w.program, options);
  exp::ExperimentEngine engine;
  EXPECT_THROW(engine.reduceCellsRange(*model, w.program, w.inputs, 0, 0, 0,
                                       2),
               std::invalid_argument);
  EXPECT_THROW(engine.reduceCellsRange(*model, w.program, w.inputs, 0, 5, 0,
                                       2),
               std::invalid_argument);
  EXPECT_THROW(engine.reduceCellsRange(*model, w.program, w.inputs, 0, 2, 3,
                                       3),
               std::invalid_argument);
  EXPECT_THROW(engine.reduceCellsRange(*model, w.program, w.inputs, 0, 2, 0,
                                       w.inputs.size() + 1),
               std::invalid_argument);
  // A strict sub-rectangle reports global witnesses: the accumulator has
  // the full shape, and its extremes index the original grid.
  const auto acc = engine.reduceCellsRange(*model, w.program, w.inputs, 2, 4,
                                           3, 7);
  EXPECT_EQ(acc.numStates(), 4u);
  EXPECT_EQ(acc.numInputs(), w.inputs.size());
  EXPECT_EQ(acc.cells(), (4u - 2u) * (7u - 3u));
  const auto pr = acc.pr();
  EXPECT_GE(pr.q1, 2u);
  EXPECT_LT(pr.q1, 4u);
  EXPECT_GE(pr.i1, 3u);
  EXPECT_LT(pr.i1, 7u);
}

}  // namespace
}  // namespace pred
