// noc_test.cpp — Arbiters, the shared resource, and the CoMPSoC
// composability property (Table 1, row 4): TDM composes, FCFS does not.

#include <gtest/gtest.h>

#include "noc/arbiter.h"
#include "noc/composability.h"
#include "noc/shared_resource.h"

namespace pred::noc {
namespace {

TEST(Arbiters, TdmGrantsOnlySlotOwner) {
  TdmArbiter tdm({0, 1, 2});
  std::vector<bool> pending{true, true, true};
  std::vector<Cycles> arr{0, 0, 0};
  EXPECT_EQ(tdm.grant(0, pending, arr), 0);
  EXPECT_EQ(tdm.grant(1, pending, arr), 1);
  EXPECT_EQ(tdm.grant(2, pending, arr), 2);
  EXPECT_EQ(tdm.grant(3, pending, arr), 0);
}

TEST(Arbiters, TdmLeavesUnclaimedSlotIdle) {
  TdmArbiter tdm({0, 1});
  std::vector<bool> pending{false, true};
  std::vector<Cycles> arr{~Cycles{0}, 0};
  EXPECT_EQ(tdm.grant(0, pending, arr), -1);  // slot 0 idle although 1 waits
  EXPECT_EQ(tdm.grant(1, pending, arr), 1);
}

TEST(Arbiters, FcfsPicksOldest) {
  FcfsArbiter fcfs;
  std::vector<bool> pending{true, true};
  std::vector<Cycles> arr{10, 3};
  EXPECT_EQ(fcfs.grant(0, pending, arr), 1);
}

TEST(Arbiters, RoundRobinRotates) {
  RoundRobinArbiter rr;
  std::vector<bool> pending{true, true, true};
  std::vector<Cycles> arr{0, 0, 0};
  EXPECT_EQ(rr.grant(0, pending, arr), 0);
  EXPECT_EQ(rr.grant(1, pending, arr), 1);
  EXPECT_EQ(rr.grant(2, pending, arr), 2);
  EXPECT_EQ(rr.grant(3, pending, arr), 0);
}

TEST(Arbiters, FixedPriorityStarvesLow) {
  FixedPriorityArbiter fp;
  std::vector<bool> pending{true, true};
  std::vector<Cycles> arr{5, 0};
  EXPECT_EQ(fp.grant(0, pending, arr), 0);  // regardless of arrival order
}

TEST(SharedResource, ServesEverythingOnce) {
  SharedResource res(2, 4);
  FcfsArbiter fcfs;
  auto served = res.run(fcfs, periodicStream(0, 0, 8, 5));
  EXPECT_EQ(served.size(), 5u);
}

TEST(SharedResource, RejectsBadClient) {
  SharedResource res(2, 4);
  FcfsArbiter fcfs;
  EXPECT_THROW(res.run(fcfs, {{7, 0, 0}}), std::runtime_error);
}

TEST(SharedResource, ClientLatenciesInArrivalOrder) {
  SharedResource res(2, 2);
  FcfsArbiter fcfs;
  auto reqs = periodicStream(0, 0, 2, 4);
  auto served = res.run(fcfs, reqs);
  const auto lat = SharedResource::clientLatencies(served, 0);
  EXPECT_EQ(lat.size(), 4u);
}

TEST(Streams, PeriodicAndBursty) {
  const auto p = periodicStream(1, 5, 10, 3);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[2].arrival, 25u);
  const auto b = burstyStream(2, 0, 100, 4, 2);
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b[4].arrival, 100u);
}

// ---------------------------------------------------------------------------
// Composability (the CoMPSoC claim).
// ---------------------------------------------------------------------------

std::vector<std::vector<NocRequest>> coRunnerScenarios() {
  return {
      {},                                     // alone (trivial scenario)
      periodicStream(1, 0, 7, 30),            // light periodic co-runner
      burstyStream(1, 0, 40, 8, 6),           // bursty co-runner
      [] {                                    // saturating co-runners
        auto v = periodicStream(1, 0, 1, 60);
        auto w = periodicStream(2, 0, 1, 60);
        auto x = periodicStream(3, 0, 1, 60);
        v.insert(v.end(), w.begin(), w.end());
        v.insert(v.end(), x.begin(), x.end());
        return v;
      }(),
  };
}

TEST(Composability, TdmIsComposable) {
  SharedResource res(4, 3);
  TdmArbiter tdm({0, 1, 2, 3});
  const auto observed = periodicStream(0, 0, 12, 20);
  const auto report =
      checkComposability(res, tdm, 0, observed, coRunnerScenarios());
  EXPECT_TRUE(report.composable) << report.detail;
  EXPECT_EQ(report.maxDeviation, 0u);
}

TEST(Composability, FcfsIsNotComposable) {
  SharedResource res(4, 3);
  FcfsArbiter fcfs;
  const auto observed = periodicStream(0, 0, 12, 20);
  const auto report =
      checkComposability(res, fcfs, 0, observed, coRunnerScenarios());
  EXPECT_FALSE(report.composable) << report.detail;
  EXPECT_GT(report.maxDeviation, 0u);
}

TEST(Composability, RoundRobinIsNotComposable) {
  SharedResource res(4, 3);
  RoundRobinArbiter rr;
  // Misaligned phase/period: a stream whose period is a multiple of the
  // rotation length can accidentally dodge all interference, so use a
  // co-prime period.
  const auto observed = periodicStream(0, 5, 13, 20);
  const auto report =
      checkComposability(res, rr, 0, observed, coRunnerScenarios());
  EXPECT_FALSE(report.composable);
}

TEST(Composability, FixedPriorityComposableForHighestPriorityOnly) {
  SharedResource res(4, 3);
  FixedPriorityArbiter fp;
  const auto observed = periodicStream(0, 0, 12, 20);
  const auto high =
      checkComposability(res, fp, 0, observed, coRunnerScenarios());
  EXPECT_TRUE(high.composable);  // client 0 preempts everyone

  // The observed client as LOWEST priority: co-runners (clients 0..2 in the
  // scenarios below use lower ids = higher priority) displace it.
  const auto observedLow = periodicStream(3, 0, 12, 20);
  std::vector<std::vector<NocRequest>> scenarios = {
      {},
      periodicStream(0, 0, 2, 40),
  };
  const auto low = checkComposability(res, fp, 3, observedLow, scenarios);
  EXPECT_FALSE(low.composable);
}

TEST(Composability, TdmWorstLatencyBoundedByRound) {
  SharedResource res(4, 3);
  TdmArbiter tdm({0, 1, 2, 3});
  const auto observed = periodicStream(0, 1, 13, 25);  // misaligned phase
  const auto report =
      checkComposability(res, tdm, 0, observed, coRunnerScenarios());
  // One TDM round (4 slots x 3 cycles) + one service.
  for (const auto worst : report.worstLatencyPerScenario) {
    EXPECT_LE(worst, (4 + 1) * 3u);
  }
}

}  // namespace
}  // namespace pred::noc
