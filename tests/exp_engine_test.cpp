// exp_engine_test.cpp — The parallel experiment engine: bit-identical
// parallel/serial matrices, trace memoization, and agreement with the
// legacy exhaustive-analysis path it replaces.

#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/exhaustive.h"
#include "exp/engine.h"
#include "exp/platform.h"
#include "exp/trace_store.h"
#include "isa/ast.h"
#include "isa/workloads.h"

namespace pred::exp {
namespace {

isa::Program testProgram() {
  return isa::ast::compileBranchy(isa::workloads::linearSearch(8));
}

std::vector<isa::Input> testInputs(const isa::Program& prog, int howMany) {
  auto inputs = isa::workloads::randomArrayInputs(prog, "a", 8, howMany, 11);
  for (auto& in : inputs) {
    in = isa::mergeInputs(in, isa::varInput(prog, "key", 3));
  }
  return inputs;
}

TEST(ExperimentEngine, ParallelEqualsSerialCellForCell) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 12);
  PlatformOptions opts;
  opts.numStates = 10;
  const auto model =
      PlatformRegistry::instance().make("inorder-lru", prog, opts);

  ExperimentEngine serial(EngineConfig{1, 4, 8});
  ExperimentEngine parallel(EngineConfig{4, 4, 8});
  const auto ms = serial.computeMatrix(*model, prog, inputs);
  const auto mp = parallel.computeMatrix(*model, prog, inputs);

  ASSERT_EQ(ms.numStates(), 10u);
  ASSERT_EQ(ms.numInputs(), 12u);
  EXPECT_TRUE(ms == mp);
  for (std::size_t q = 0; q < ms.numStates(); ++q) {
    for (std::size_t i = 0; i < ms.numInputs(); ++i) {
      EXPECT_EQ(ms.at(q, i), mp.at(q, i)) << "q=" << q << " i=" << i;
    }
  }
}

TEST(ExperimentEngine, DeterministicAcrossThreadCountsAndTileShapes) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 9);
  PlatformOptions opts;
  opts.numStates = 7;
  const auto model =
      PlatformRegistry::instance().make("inorder-fifo", prog, opts);

  ExperimentEngine reference(EngineConfig{1, 1, 1});
  const auto expected = reference.computeMatrix(*model, prog, inputs);
  for (int threads : {1, 2, 3, 8}) {
    for (auto [tq, ti] : {std::pair<std::size_t, std::size_t>{1, 1},
                          {3, 5},
                          {64, 64}}) {
      ExperimentEngine engine(EngineConfig{threads, tq, ti});
      EXPECT_TRUE(expected == engine.computeMatrix(*model, prog, inputs))
          << "threads=" << threads << " tile=" << tq << "x" << ti;
    }
  }
}

TEST(ExperimentEngine, MatchesLegacyExhaustiveAnalysisPath) {
  // Same Q enumeration parameters as analysis::exhaustiveInOrder — the
  // engine must reproduce the seed's ground-truth matrix exactly.
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 6);
  const cache::CacheGeometry geom{4, 8, 2};
  const cache::CacheTiming timing{1, 10};
  const auto legacy = analysis::exhaustiveInOrder(
      prog, inputs, geom, cache::Policy::LRU, timing, 8, 42,
      pipeline::InOrderConfig{});

  PlatformOptions opts;
  opts.numStates = 8;
  opts.seed = 42;
  opts.dataGeom = geom;
  opts.dataTiming = timing;
  const auto model =
      PlatformRegistry::instance().make("inorder-lru", prog, opts);
  ExperimentEngine engine(EngineConfig{4});
  EXPECT_TRUE(legacy.matrix == engine.computeMatrix(*model, prog, inputs));
}

TEST(TraceStore, MemoizedTracesEqualFreshTraces) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 5);
  TraceStore store;
  for (const auto& in : inputs) {
    const auto& memoized = store.traceFor(prog, in);
    const auto fresh = isa::FunctionalCore::run(prog, in).trace;
    ASSERT_EQ(memoized.size(), fresh.size());
    for (std::size_t k = 0; k < fresh.size(); ++k) {
      EXPECT_EQ(memoized[k].pc, fresh[k].pc);
      EXPECT_EQ(memoized[k].nextPc, fresh[k].nextPc);
      EXPECT_EQ(memoized[k].branchTaken, fresh[k].branchTaken);
      EXPECT_EQ(memoized[k].memWordAddr, fresh[k].memWordAddr);
      EXPECT_EQ(memoized[k].extraLatency, fresh[k].extraLatency);
    }
  }
}

TEST(TraceStore, ComputesEachInputOnceAndReturnsStablePointers) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 6);
  TraceStore store;
  const auto first = store.tracesFor(prog, inputs);
  EXPECT_EQ(store.misses(), 6u);
  EXPECT_EQ(store.size(), 6u);
  const auto second = store.tracesFor(prog, inputs);
  EXPECT_EQ(store.misses(), 6u);  // no recomputation
  EXPECT_EQ(store.hits(), 6u);
  EXPECT_EQ(first, second);  // identical pointers
}

TEST(TraceStore, KeysByContentNotByObjectAddress) {
  const auto progA = testProgram();
  const auto progB = testProgram();  // distinct object, same code
  EXPECT_EQ(programFingerprint(progA), programFingerprint(progB));
  const auto different =
      isa::ast::compileBranchy(isa::workloads::sumLoop(8));
  EXPECT_NE(programFingerprint(progA), programFingerprint(different));

  TraceStore store;
  store.traceFor(progA, isa::Input{});
  store.traceFor(progB, isa::Input{});
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.hits(), 1u);
}

/// Code-identical raw program parameterized by layout only: loads word 100,
/// whose wrapped address (memWords) and region classification (bases) both
/// depend on the MemoryLayout alone.
isa::Program rawLoadProgram(const isa::MemoryLayout& layout) {
  isa::Program p;
  p.code = {
      isa::Instr{isa::Op::LI, 1, 0, 0, 100},
      isa::Instr{isa::Op::LD, 2, 1, 0, 0},
      isa::Instr{isa::Op::HALT, 0, 0, 0, 0},
  };
  p.layout = layout;
  return p;
}

TEST(TraceStore, CodeIdenticalProgramsWithDifferentBasesStayDistinct) {
  // THE regression for the fingerprint-collision bug: the pre-fix
  // programFingerprint mixed layout.memWords but NOT the three base fields,
  // so these two code-identical programs collided and the store served one
  // layout's memoized entry for the other.  Their traces are equal (bases
  // never change an executed address), but the REGION of the accessed word
  // differs — Static under the default layout, Heap once heapBase drops
  // below it — which is exactly what split-cache timing keys on.
  isa::MemoryLayout defaultLayout;
  isa::MemoryLayout lowHeap;
  lowHeap.heapBase = 64;
  const auto progA = rawLoadProgram(defaultLayout);
  const auto progB = rawLoadProgram(lowHeap);
  ASSERT_EQ(defaultLayout.regionOf(100), isa::DataRegion::Static);
  ASSERT_EQ(lowHeap.regionOf(100), isa::DataRegion::Heap);

  EXPECT_NE(programFingerprint(progA), programFingerprint(progB));
  // Every base field must be identity-bearing, not just heapBase.
  for (auto mutate : {+[](isa::MemoryLayout& l) { l.staticBase = 8; },
                      +[](isa::MemoryLayout& l) { l.stackBase = 512; },
                      +[](isa::MemoryLayout& l) { l.memWords = 64; }}) {
    isa::MemoryLayout changed;
    mutate(changed);
    EXPECT_NE(programFingerprint(rawLoadProgram(changed)),
              programFingerprint(progA));
  }

  TraceStore store;
  store.traceFor(progA, isa::Input{});
  store.traceFor(progB, isa::Input{});
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.misses(), 2u);
  EXPECT_EQ(store.hits(), 0u);
}

TEST(TraceStore, CodeIdenticalProgramsWithDifferentMemWordsDifferInTrace) {
  // memWords changes the WRAPPED effective address, so here even the traces
  // differ — sharing an entry would corrupt every measure downstream.
  isa::MemoryLayout big;     // wrapAddr(100) = 100
  isa::MemoryLayout small;   // wrapAddr(100) = 100 % 64 = 36
  small.memWords = 64;
  const auto progA = rawLoadProgram(big);
  const auto progB = rawLoadProgram(small);

  TraceStore store;
  const auto& traceA = store.traceFor(progA, isa::Input{});
  const auto& traceB = store.traceFor(progB, isa::Input{});
  EXPECT_EQ(store.size(), 2u);
  ASSERT_EQ(traceA.size(), traceB.size());
  EXPECT_EQ(traceA[1].memWordAddr, 100);
  EXPECT_EQ(traceB[1].memWordAddr, 36);
  EXPECT_FALSE(tracesIdentical(traceA, traceB));
  EXPECT_NE(traceFingerprint(traceA), traceFingerprint(traceB));
}

TEST(TraceStore, TraceEquivalentInputsShareAClassId) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 2);
  TraceStore store;

  // Three trace-equal flavors of input 0: the input itself, a renamed exact
  // copy (same store key), and a copy with one never-read scratch word
  // (distinct store key, identical trace).
  const auto ref0 = store.traceRefFor(prog, inputs[0]);
  isa::Input renamed = inputs[0];
  renamed.name = "renamed";
  const auto refRenamed = store.traceRefFor(prog, renamed);
  isa::Input scratch = inputs[0];
  scratch.mem[prog.layout.memWords - 1] = 42;
  const auto refScratch = store.traceRefFor(prog, scratch);

  EXPECT_EQ(ref0.classId, refRenamed.classId);
  EXPECT_EQ(ref0.trace, refRenamed.trace);  // same entry entirely
  EXPECT_EQ(ref0.classId, refScratch.classId);
  EXPECT_NE(ref0.trace, refScratch.trace);  // distinct entry, same class
  EXPECT_TRUE(tracesIdentical(*ref0.trace, *refScratch.trace));

  // An input whose trace certainly differs (the key lands in slot 0, so
  // the very first comparison ends the scan) gets its own class;
  // entryRefFor and traceRefFor agree on ids.
  isa::Input found = inputs[0];
  found.mem[prog.variables.at("a")] = 3;
  found.name = "found-at-0";
  const auto ref1 = store.entryRefFor(prog, found);
  EXPECT_NE(ref1.classId, ref0.classId);
  EXPECT_EQ(store.traceRefFor(prog, found).classId, ref1.classId);

  EXPECT_EQ(store.size(), 3u);        // input0, scratch, found
  EXPECT_EQ(store.classCount(), 2u);  // {input0, scratch}, {found}

  // clear() resets the class numbering along with the entries.
  store.clear();
  EXPECT_EQ(store.classCount(), 0u);
  EXPECT_EQ(store.traceRefFor(prog, found).classId, 0u);
}

TEST(TraceStore, ThrowsOnNonHaltingProgram) {
  isa::Program infinite;
  infinite.code = {isa::Instr{isa::Op::JMP, 0, 0, 0, 0}};
  TraceStore store;
  EXPECT_THROW(store.traceFor(infinite, isa::Input{}), std::runtime_error);
}

class ThrowingModel : public TimingModel {
 public:
  std::string name() const override { return "throwing"; }
  std::size_t numStates() const override { return 4; }
  Cycles time(std::size_t q, const isa::Trace&) const override {
    if (q == 2) throw std::runtime_error("boom");
    return 1;
  }
};

TEST(ExperimentEngine, WorkerExceptionsPropagateToCaller) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 4);
  ThrowingModel model;
  for (int threads : {1, 4}) {
    ExperimentEngine engine(EngineConfig{threads, 1, 1});
    EXPECT_THROW(engine.computeMatrix(model, prog, inputs),
                 std::runtime_error);
  }
}

TEST(ExperimentEngine, EmptyAxesYieldEmptyMatrix) {
  const auto prog = testProgram();
  PlatformOptions opts;
  opts.numStates = 3;
  const auto model =
      PlatformRegistry::instance().make("inorder-lru", prog, opts);
  ExperimentEngine engine;
  const auto m = engine.computeMatrix(*model, prog, {});
  EXPECT_EQ(m.numStates(), 3u);
  EXPECT_EQ(m.numInputs(), 0u);
  EXPECT_EQ(m.bcet(), 0u);  // defined (zero) rather than UB on empty axes
  EXPECT_EQ(m.wcet(), 0u);
}

}  // namespace
}  // namespace pred::exp
