// exp_engine_test.cpp — The parallel experiment engine: bit-identical
// parallel/serial matrices, trace memoization, and agreement with the
// legacy exhaustive-analysis path it replaces.

#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/exhaustive.h"
#include "exp/engine.h"
#include "exp/platform.h"
#include "exp/trace_store.h"
#include "isa/ast.h"
#include "isa/workloads.h"

namespace pred::exp {
namespace {

isa::Program testProgram() {
  return isa::ast::compileBranchy(isa::workloads::linearSearch(8));
}

std::vector<isa::Input> testInputs(const isa::Program& prog, int howMany) {
  auto inputs = isa::workloads::randomArrayInputs(prog, "a", 8, howMany, 11);
  for (auto& in : inputs) {
    in = isa::mergeInputs(in, isa::varInput(prog, "key", 3));
  }
  return inputs;
}

TEST(ExperimentEngine, ParallelEqualsSerialCellForCell) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 12);
  PlatformOptions opts;
  opts.numStates = 10;
  const auto model =
      PlatformRegistry::instance().make("inorder-lru", prog, opts);

  ExperimentEngine serial(EngineConfig{1, 4, 8});
  ExperimentEngine parallel(EngineConfig{4, 4, 8});
  const auto ms = serial.computeMatrix(*model, prog, inputs);
  const auto mp = parallel.computeMatrix(*model, prog, inputs);

  ASSERT_EQ(ms.numStates(), 10u);
  ASSERT_EQ(ms.numInputs(), 12u);
  EXPECT_TRUE(ms == mp);
  for (std::size_t q = 0; q < ms.numStates(); ++q) {
    for (std::size_t i = 0; i < ms.numInputs(); ++i) {
      EXPECT_EQ(ms.at(q, i), mp.at(q, i)) << "q=" << q << " i=" << i;
    }
  }
}

TEST(ExperimentEngine, DeterministicAcrossThreadCountsAndTileShapes) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 9);
  PlatformOptions opts;
  opts.numStates = 7;
  const auto model =
      PlatformRegistry::instance().make("inorder-fifo", prog, opts);

  ExperimentEngine reference(EngineConfig{1, 1, 1});
  const auto expected = reference.computeMatrix(*model, prog, inputs);
  for (int threads : {1, 2, 3, 8}) {
    for (auto [tq, ti] : {std::pair<std::size_t, std::size_t>{1, 1},
                          {3, 5},
                          {64, 64}}) {
      ExperimentEngine engine(EngineConfig{threads, tq, ti});
      EXPECT_TRUE(expected == engine.computeMatrix(*model, prog, inputs))
          << "threads=" << threads << " tile=" << tq << "x" << ti;
    }
  }
}

TEST(ExperimentEngine, MatchesLegacyExhaustiveAnalysisPath) {
  // Same Q enumeration parameters as analysis::exhaustiveInOrder — the
  // engine must reproduce the seed's ground-truth matrix exactly.
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 6);
  const cache::CacheGeometry geom{4, 8, 2};
  const cache::CacheTiming timing{1, 10};
  const auto legacy = analysis::exhaustiveInOrder(
      prog, inputs, geom, cache::Policy::LRU, timing, 8, 42,
      pipeline::InOrderConfig{});

  PlatformOptions opts;
  opts.numStates = 8;
  opts.seed = 42;
  opts.dataGeom = geom;
  opts.dataTiming = timing;
  const auto model =
      PlatformRegistry::instance().make("inorder-lru", prog, opts);
  ExperimentEngine engine(EngineConfig{4});
  EXPECT_TRUE(legacy.matrix == engine.computeMatrix(*model, prog, inputs));
}

TEST(TraceStore, MemoizedTracesEqualFreshTraces) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 5);
  TraceStore store;
  for (const auto& in : inputs) {
    const auto& memoized = store.traceFor(prog, in);
    const auto fresh = isa::FunctionalCore::run(prog, in).trace;
    ASSERT_EQ(memoized.size(), fresh.size());
    for (std::size_t k = 0; k < fresh.size(); ++k) {
      EXPECT_EQ(memoized[k].pc, fresh[k].pc);
      EXPECT_EQ(memoized[k].nextPc, fresh[k].nextPc);
      EXPECT_EQ(memoized[k].branchTaken, fresh[k].branchTaken);
      EXPECT_EQ(memoized[k].memWordAddr, fresh[k].memWordAddr);
      EXPECT_EQ(memoized[k].extraLatency, fresh[k].extraLatency);
    }
  }
}

TEST(TraceStore, ComputesEachInputOnceAndReturnsStablePointers) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 6);
  TraceStore store;
  const auto first = store.tracesFor(prog, inputs);
  EXPECT_EQ(store.misses(), 6u);
  EXPECT_EQ(store.size(), 6u);
  const auto second = store.tracesFor(prog, inputs);
  EXPECT_EQ(store.misses(), 6u);  // no recomputation
  EXPECT_EQ(store.hits(), 6u);
  EXPECT_EQ(first, second);  // identical pointers
}

TEST(TraceStore, KeysByContentNotByObjectAddress) {
  const auto progA = testProgram();
  const auto progB = testProgram();  // distinct object, same code
  EXPECT_EQ(programFingerprint(progA), programFingerprint(progB));
  const auto different =
      isa::ast::compileBranchy(isa::workloads::sumLoop(8));
  EXPECT_NE(programFingerprint(progA), programFingerprint(different));

  TraceStore store;
  store.traceFor(progA, isa::Input{});
  store.traceFor(progB, isa::Input{});
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.hits(), 1u);
}

TEST(TraceStore, ThrowsOnNonHaltingProgram) {
  isa::Program infinite;
  infinite.code = {isa::Instr{isa::Op::JMP, 0, 0, 0, 0}};
  TraceStore store;
  EXPECT_THROW(store.traceFor(infinite, isa::Input{}), std::runtime_error);
}

class ThrowingModel : public TimingModel {
 public:
  std::string name() const override { return "throwing"; }
  std::size_t numStates() const override { return 4; }
  Cycles time(std::size_t q, const isa::Trace&) const override {
    if (q == 2) throw std::runtime_error("boom");
    return 1;
  }
};

TEST(ExperimentEngine, WorkerExceptionsPropagateToCaller) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 4);
  ThrowingModel model;
  for (int threads : {1, 4}) {
    ExperimentEngine engine(EngineConfig{threads, 1, 1});
    EXPECT_THROW(engine.computeMatrix(model, prog, inputs),
                 std::runtime_error);
  }
}

TEST(ExperimentEngine, EmptyAxesYieldEmptyMatrix) {
  const auto prog = testProgram();
  PlatformOptions opts;
  opts.numStates = 3;
  const auto model =
      PlatformRegistry::instance().make("inorder-lru", prog, opts);
  ExperimentEngine engine;
  const auto m = engine.computeMatrix(*model, prog, {});
  EXPECT_EQ(m.numStates(), 3u);
  EXPECT_EQ(m.numInputs(), 0u);
  EXPECT_EQ(m.bcet(), 0u);  // defined (zero) rather than UB on empty axes
  EXPECT_EQ(m.wcet(), 0u);
}

}  // namespace
}  // namespace pred::exp
