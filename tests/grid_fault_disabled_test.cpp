// grid_fault_disabled_test.cpp — pins the PRED_FAULTS_DISABLED contract.
//
// This TU is compiled with PRED_FAULTS_DISABLED (see CMakeLists.txt), so
// grid/faultpoint.h selects the faults_off inline namespace here while the
// pred library it links against keeps the instrumented faults_on one —
// distinct namespaces, ODR-clean.  What must hold in a faults-off TU:
//
//   - check()/tornLimit() are inert no-ops,
//   - nothing ever reads as armed,
//   - armPlan() THROWS, so a daemon started with --fault-plan on a
//     faults-off build fails loudly instead of silently not injecting.

#include <gtest/gtest.h>

#include "grid/faultpoint.h"

#ifndef PRED_FAULTS_DISABLED
#error "grid_fault_disabled_test must be compiled with PRED_FAULTS_DISABLED"
#endif

namespace fault = pred::grid::fault;

TEST(FaultsDisabled, CheckAndTornLimitAreInert) {
  EXPECT_NO_THROW(fault::check("net.read"));
  EXPECT_NO_THROW(fault::check("cache.journal"));
  EXPECT_NO_THROW(fault::check("not-even-a-point"));
  EXPECT_EQ(fault::tornLimit("cache.journal", 128), std::nullopt);
}

TEST(FaultsDisabled, NothingIsEverArmed) {
  EXPECT_FALSE(fault::anyArmed());
  EXPECT_EQ(fault::hitCount("net.read"), 0u);
  EXPECT_EQ(fault::planText(), "");
  EXPECT_NO_THROW(fault::disarm());
}

TEST(FaultsDisabled, ArmPlanFailsLoudly) {
  EXPECT_THROW(fault::armPlan("net.read:error"), std::runtime_error);
}
