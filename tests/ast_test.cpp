// ast_test.cpp — The branchy code generator computes what the AST says.

#include <gtest/gtest.h>

#include "isa/ast.h"
#include "isa/exec.h"
#include "isa/workloads.h"

namespace pred::isa::ast {
namespace {

std::int64_t readVar(const Program& p, const MachineState& st,
                     const std::string& name) {
  return st.mem[static_cast<std::size_t>(p.variables.at(name))];
}

RunResult runOn(const Program& p, const Input& in = Input{}) {
  auto r = FunctionalCore::run(p, in);
  EXPECT_TRUE(r.completed);
  return r;
}

TEST(AstCompile, ConstantsAndArithmetic) {
  AstProgram a;
  a.scalars = {"x", "y"};
  a.main = seq({
      assign("x", add(constant(6), mul(constant(4), constant(9)))),  // 42
      assign("y", sub(var("x"), constant(2))),                       // 40
  });
  const auto p = compileBranchy(a);
  auto r = runOn(p);
  EXPECT_EQ(readVar(p, r.finalState, "x"), 42);
  EXPECT_EQ(readVar(p, r.finalState, "y"), 40);
}

TEST(AstCompile, AllComparisons) {
  AstProgram a;
  a.scalars = {"lt1", "lt0", "le1", "gt1", "ge1", "eq1", "eq0", "ne1"};
  a.main = seq({
      assign("lt1", lt(constant(1), constant(2))),
      assign("lt0", lt(constant(2), constant(2))),
      assign("le1", le(constant(2), constant(2))),
      assign("gt1", gt(constant(3), constant(2))),
      assign("ge1", ge(constant(2), constant(2))),
      assign("eq1", eq(constant(5), constant(5))),
      assign("eq0", eq(constant(5), constant(6))),
      assign("ne1", ne(constant(5), constant(6))),
  });
  const auto p = compileBranchy(a);
  auto r = runOn(p);
  EXPECT_EQ(readVar(p, r.finalState, "lt1"), 1);
  EXPECT_EQ(readVar(p, r.finalState, "lt0"), 0);
  EXPECT_EQ(readVar(p, r.finalState, "le1"), 1);
  EXPECT_EQ(readVar(p, r.finalState, "gt1"), 1);
  EXPECT_EQ(readVar(p, r.finalState, "ge1"), 1);
  EXPECT_EQ(readVar(p, r.finalState, "eq1"), 1);
  EXPECT_EQ(readVar(p, r.finalState, "eq0"), 0);
  EXPECT_EQ(readVar(p, r.finalState, "ne1"), 1);
}

TEST(AstCompile, IfElseBothArms) {
  AstProgram a;
  a.scalars = {"x", "r"};
  a.main = ifElse(lt(var("x"), constant(10)), assign("r", constant(1)),
                  assign("r", constant(2)));
  const auto p = compileBranchy(a);
  {
    auto r = runOn(p, varInput(p, "x", 5));
    EXPECT_EQ(readVar(p, r.finalState, "r"), 1);
  }
  {
    auto r = runOn(p, varInput(p, "x", 15));
    EXPECT_EQ(readVar(p, r.finalState, "r"), 2);
  }
}

TEST(AstCompile, IfWithoutElse) {
  AstProgram a;
  a.scalars = {"x", "r"};
  a.main = seq({assign("r", constant(7)),
                ifElse(eq(var("x"), constant(0)), assign("r", constant(9)))});
  const auto p = compileBranchy(a);
  auto r0 = runOn(p, varInput(p, "x", 0));
  EXPECT_EQ(readVar(p, r0.finalState, "r"), 9);
  auto r1 = runOn(p, varInput(p, "x", 3));
  EXPECT_EQ(readVar(p, r1.finalState, "r"), 7);
}

TEST(AstCompile, ForLoopSumsRange) {
  AstProgram a;
  a.scalars = {"i", "s"};
  a.main = seq({
      assign("s", constant(0)),
      forLoop("i", 0, 10, assign("s", add(var("s"), var("i")))),
  });
  const auto p = compileBranchy(a);
  auto r = runOn(p);
  EXPECT_EQ(readVar(p, r.finalState, "s"), 45);
}

TEST(AstCompile, WhileLoopStopsOnCondition) {
  AstProgram a;
  a.scalars = {"i"};
  a.main = seq({
      assign("i", constant(0)),
      whileLoop(lt(var("i"), constant(6)),
                assign("i", add(var("i"), constant(1))), 10),
  });
  const auto p = compileBranchy(a);
  auto r = runOn(p);
  EXPECT_EQ(readVar(p, r.finalState, "i"), 6);
}

TEST(AstCompile, ArraysReadWrite) {
  AstProgram a;
  a.scalars = {"i"};
  a.arrays["v"] = 8;
  a.main = seq({
      forLoop("i", 0, 8, arrayAssign("v", var("i"), mul(var("i"), var("i")))),
  });
  const auto p = compileBranchy(a);
  auto r = runOn(p);
  const auto base = static_cast<std::size_t>(p.variables.at("v"));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(r.finalState.mem[base + static_cast<std::size_t>(i)], i * i);
  }
}

TEST(AstCompile, HeapArrayMarkedUnknown) {
  const auto p = compileBranchy(workloads::heapMix(4));
  EXPECT_FALSE(p.unknownAddressAccesses.empty());
  auto r = runOn(p);
  // hp[i] = stat[i] + 1 with stat zero-initialized -> s = n.
  EXPECT_EQ(readVar(p, r.finalState, "s"), 4);
}

TEST(AstCompile, FunctionsCalled) {
  AstProgram a;
  a.scalars = {"acc"};
  a.functions.push_back(
      FunctionDecl{"bump", assign("acc", add(var("acc"), constant(5)))});
  a.main = seq({assign("acc", constant(1)), callFn("bump"), callFn("bump")});
  const auto p = compileBranchy(a);
  EXPECT_EQ(p.functions.size(), 1u);
  auto r = runOn(p);
  EXPECT_EQ(readVar(p, r.finalState, "acc"), 11);
}

TEST(AstCompile, BubbleSortSorts) {
  const auto p = compileBranchy(workloads::bubbleSort(6));
  Input in;
  const auto base = p.variables.at("a");
  const std::int64_t vals[6] = {5, 3, 6, 1, 2, 4};
  for (int i = 0; i < 6; ++i) in.mem[base + i] = vals[i];
  auto r = runOn(p, in);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(r.finalState.mem[static_cast<std::size_t>(base + i)], i + 1);
  }
}

TEST(AstCompile, MatMulIdentity) {
  const auto p = compileBranchy(workloads::matMul(3));
  Input in;
  const auto baseA = p.variables.at("ma");
  const auto baseB = p.variables.at("mb");
  // a = identity, b = arbitrary.
  for (int i = 0; i < 3; ++i) in.mem[baseA + i * 3 + i] = 1;
  for (int k = 0; k < 9; ++k) in.mem[baseB + k] = k + 1;
  auto r = runOn(p, in);
  const auto baseC = static_cast<std::size_t>(p.variables.at("mc"));
  for (int k = 0; k < 9; ++k) {
    EXPECT_EQ(r.finalState.mem[baseC + static_cast<std::size_t>(k)], k + 1);
  }
}

TEST(AstCompile, LinearSearchFindsKey) {
  const auto p = compileBranchy(workloads::linearSearch(8));
  Input in = varInput(p, "key", 7);
  const auto base = p.variables.at("a");
  for (int i = 0; i < 8; ++i) in.mem[base + i] = i;
  auto r = runOn(p, in);
  EXPECT_EQ(readVar(p, r.finalState, "found"), 1);
  EXPECT_EQ(readVar(p, r.finalState, "i"), 7);
}

TEST(AstCompile, LinearSearchTraceLengthDependsOnInput) {
  const auto p = compileBranchy(workloads::linearSearch(8));
  const auto base = p.variables.at("a");
  Input early = varInput(p, "key", 0);
  Input never = varInput(p, "key", 99);
  for (int i = 0; i < 8; ++i) {
    early.mem[base + i] = i;
    never.mem[base + i] = i;
  }
  auto rEarly = runOn(p, early);
  auto rNever = runOn(p, never);
  EXPECT_LT(rEarly.trace.size(), rNever.trace.size());
}

TEST(AstCompile, DivKernelUsesDataDependentLatency) {
  const auto p = compileBranchy(workloads::divKernel(4));
  Input in = varInput(p, "x", 0);
  const auto base = p.variables.at("a");
  in.mem[base + 0] = 1;
  in.mem[base + 1] = 1'000'000;
  auto r = runOn(p, in);
  std::set<std::int32_t> latencies;
  for (const auto& rec : r.trace) {
    if (rec.instr.op == Op::DIV) latencies.insert(rec.extraLatency);
  }
  EXPECT_GE(latencies.size(), 2u);  // different operand magnitudes
}

TEST(AstCompile, CallRoundRobinFunctionsExist) {
  const auto p = compileBranchy(workloads::callRoundRobin(4, 3, 2));
  EXPECT_EQ(p.functions.size(), 4u);
  auto r = runOn(p);
  EXPECT_GT(computeStats(r.trace).calls, 0u);
}

TEST(AstCompile, ValidationPassesForAllWorkloads) {
  const AstProgram progs[] = {
      workloads::sumLoop(4),      workloads::linearSearch(4),
      workloads::bubbleSort(4),   workloads::branchTree(3),
      workloads::matMul(2),       workloads::heapMix(4),
      workloads::divKernel(4),    workloads::callRoundRobin(3, 2, 2),
  };
  for (const auto& a : progs) {
    const auto p = compileBranchy(a);
    EXPECT_FALSE(p.validate().has_value());
  }
}

}  // namespace
}  // namespace pred::isa::ast
