// replay_test.cpp — The replay-kernel layer: packed cache snapshots are
// lossless and behaviorally identical to SetAssocCache for every policy,
// compiled-trace replay is bit-identical to the interpreted pipeline walk
// across all PlatformRegistry presets, streaming measures reproduce the
// matrix evaluators witness-for-witness, and exhaustive queries with
// keepMatrices=false never materialize a |Q|x|I| matrix.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <stdexcept>
#include <vector>

#include "cache/locking.h"
#include "cache/packed.h"
#include "cache/set_assoc.h"
#include "core/definitions.h"
#include "core/measures.h"
#include "exp/engine.h"
#include "exp/platform.h"
#include "exp/replay.h"
#include "exp/trace_store.h"
#include "exp/worker_pool.h"
#include "isa/ast.h"
#include "isa/workloads.h"
#include "study/query.h"
#include "witness_expect.h"

namespace pred {
namespace {

const std::vector<cache::Policy> kAllPolicies = {
    cache::Policy::LRU, cache::Policy::FIFO, cache::Policy::PLRU,
    cache::Policy::MRU, cache::Policy::RANDOM};

std::vector<std::int64_t> randomAddrs(std::size_t n, std::int64_t space,
                                      std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> d(0, space - 1);
  std::vector<std::int64_t> out(n);
  for (auto& a : out) a = d(rng);
  return out;
}

isa::Program testProgram() {
  return isa::ast::compileBranchy(isa::workloads::linearSearch(8));
}

std::vector<isa::Input> testInputs(const isa::Program& prog, int howMany) {
  auto inputs = isa::workloads::randomArrayInputs(prog, "a", 8, howMany, 11);
  for (auto& in : inputs) {
    in = isa::mergeInputs(in, isa::varInput(prog, "key", 3));
  }
  return inputs;
}

// ---------------------------------------------------------------- packing

TEST(PackedCache, PackUnpackRoundTripsAllPolicies) {
  const cache::CacheGeometry geom{4, 8, 4};
  const cache::CacheTiming timing{1, 10};
  for (const auto policy : kAllPolicies) {
    cache::SetAssocCache c(geom, policy, timing, 99);
    c.warmUp(randomAddrs(300, 4 * geom.capacityWords(), 7));
    auto back = cache::SetAssocCache::unpack(c.pack());
    EXPECT_EQ(c.stateSignature(), back.stateSignature())
        << toString(policy);
    // The round trip must preserve FUTURE behavior too (policy metadata and
    // the RANDOM rng state, not just contents).
    for (const auto a : randomAddrs(200, 4 * geom.capacityWords(), 8)) {
      const auto r1 = c.access(a);
      const auto r2 = back.access(a);
      EXPECT_EQ(r1.hit, r2.hit) << toString(policy);
      EXPECT_EQ(r1.latency, r2.latency) << toString(policy);
    }
    EXPECT_EQ(c.stateSignature(), back.stateSignature()) << toString(policy);
  }
}

TEST(PackedCache, SimMatchesLegacyAccessForAccessAllPolicies) {
  const cache::CacheGeometry geom{4, 8, 4};
  const cache::CacheTiming timing{2, 17};
  for (const auto policy : kAllPolicies) {
    cache::SetAssocCache legacy(geom, policy, timing, 12345);
    legacy.warmUp(randomAddrs(150, 4 * geom.capacityWords(), 3));
    cache::PackedCacheSim sim;
    sim.load(legacy.pack());
    legacy.clearCounters();
    for (const auto a : randomAddrs(500, 4 * geom.capacityWords(), 4)) {
      const auto rl = legacy.access(a);
      const auto rp = sim.access(a);
      ASSERT_EQ(rl.hit, rp.hit) << toString(policy);
      ASSERT_EQ(rl.latency, rp.latency) << toString(policy);
    }
    EXPECT_EQ(legacy.hits(), sim.hits()) << toString(policy);
    EXPECT_EQ(legacy.misses(), sim.misses()) << toString(policy);
  }
}

TEST(PackedCache, SimMatchesLegacyOnNonPowerOfTwoGeometry) {
  // lineWords=3, numSets=5 forces the division (non-shift) address path.
  const cache::CacheGeometry geom{3, 5, 2};
  const cache::CacheTiming timing{1, 9};
  for (const auto policy :
       {cache::Policy::LRU, cache::Policy::FIFO, cache::Policy::MRU,
        cache::Policy::RANDOM}) {
    cache::SetAssocCache legacy(geom, policy, timing, 5);
    cache::PackedCacheSim sim;
    sim.load(legacy.pack());
    for (const auto a : randomAddrs(400, 3 * geom.capacityWords(), 21)) {
      const auto rl = legacy.access(a);
      const auto rp = sim.access(a);
      ASSERT_EQ(rl.hit, rp.hit) << toString(policy);
      ASSERT_EQ(rl.latency, rp.latency) << toString(policy);
    }
  }
}

TEST(PackedCache, ReloadResetsStateAndCounters) {
  const cache::CacheGeometry geom{4, 4, 2};
  cache::SetAssocCache proto(geom, cache::Policy::LRU, {1, 10});
  const auto cold = proto.pack();
  cache::PackedCacheSim sim;
  sim.load(cold);
  EXPECT_FALSE(sim.access(0).hit);
  EXPECT_TRUE(sim.access(0).hit);
  EXPECT_EQ(sim.hits(), 1u);
  sim.load(cold);  // the packed analogue of reset()
  EXPECT_EQ(sim.hits(), 0u);
  EXPECT_EQ(sim.misses(), 0u);
  EXPECT_FALSE(sim.access(0).hit);
}

TEST(PackedCache, PreemptionReplayMatchesLegacyResetForRandomPolicy) {
  // reset() trashes contents but never reseeds the xorshift stream; the
  // packed preemption replay (locking.cpp) must behave the same, which
  // resetContents() — unlike load() — guarantees.
  const cache::CacheGeometry geom{4, 4, 2};
  const cache::CacheTiming timing{1, 10};
  isa::Trace trace;
  for (const auto a : randomAddrs(600, 3 * geom.capacityWords(), 31)) {
    isa::ExecRecord rec;
    rec.pc = static_cast<std::int32_t>(a);
    trace.push_back(rec);
  }
  for (const auto policy : kAllPolicies) {
    for (const std::uint64_t period : {0ull, 7ull, 64ull}) {
      // The nested reference loop with the same trace-total accounting as
      // locking.cpp: every window's hits are banked before the reset.
      cache::SetAssocCache ic(geom, policy, timing);
      std::uint64_t total = 0;
      std::uint64_t n = 0;
      for (const auto& rec : trace) {
        if (period && ++n % period == 0) {
          total += ic.hits();
          ic.reset();
        }
        ic.access(rec.pc);
      }
      EXPECT_EQ(cache::unlockedHitsUnderPreemption(trace, geom, policy,
                                                   timing, period),
                total + ic.hits())
          << toString(policy) << " period=" << period;
    }
  }
}

TEST(PackedCache, WideAssociativityIsRejected) {
  const cache::CacheGeometry wide{4, 2, 32};
  EXPECT_FALSE(cache::packable(wide));
  cache::SetAssocCache c(wide, cache::Policy::LRU, {1, 10});
  EXPECT_THROW(c.pack(), std::invalid_argument);
}

// ---------------------------------------------------------- compiled traces

TEST(ReplayProgram, LowersTraceStreamsFaithfully) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 3);
  for (const auto& in : inputs) {
    const auto trace = isa::FunctionalCore::run(prog, in).trace;
    const auto rp = exp::compileTrace(trace);
    ASSERT_EQ(rp.length(), trace.size());
    const auto stats = isa::computeStats(trace);
    EXPECT_EQ(rp.dataAddr.size(), stats.memAccesses);
    EXPECT_EQ(rp.condBranchPc.size(), stats.condBranches);
    EXPECT_EQ(rp.numTakenCond, stats.takenBranches);
    std::size_t mem = 0;
    for (std::size_t k = 0; k < trace.size(); ++k) {
      EXPECT_EQ(rp.fetchPc[k], trace[k].pc);
      if (isa::latencyClass(trace[k].instr.op) == isa::LatencyClass::Memory) {
        EXPECT_EQ(rp.dataAddr[mem++], trace[k].memWordAddr);
      }
    }
  }
}

/// Every packed-capable preset: the engine's packed path must reproduce the
/// interpreted path cell-for-cell (this is the acceptance criterion of the
/// replay-kernel layer).
TEST(PackedReplay, BitIdenticalAcrossAllRegistryPresets) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 6);
  exp::PlatformOptions opts;
  opts.numStates = 5;
  for (const auto& name : exp::PlatformRegistry::instance().names()) {
    const auto model =
        exp::PlatformRegistry::instance().make(name, prog, opts);
    exp::EngineConfig interpCfg{2, 2, 3};
    interpCfg.usePackedReplay = false;
    exp::EngineConfig packedCfg{2, 2, 3};
    exp::ExperimentEngine interp(interpCfg);
    exp::ExperimentEngine packed(packedCfg);
    const auto mi = interp.computeMatrix(*model, prog, inputs);
    const auto mp = packed.computeMatrix(*model, prog, inputs);
    EXPECT_TRUE(mi == mp) << name;
  }
}

/// The cached in-order presets cover LRU/FIFO/PLRU/RANDOM; MRU has no
/// preset, so build the snapshot model directly to close the policy matrix.
TEST(PackedReplay, BitIdenticalForMruSnapshotModel) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 5);
  const cache::CacheGeometry geom{4, 8, 4};
  const cache::CacheTiming timing{1, 10};
  auto caches = cache::enumerateInitialStates(geom, cache::Policy::MRU,
                                              timing, 6, 77, 256);
  std::vector<exp::InOrderSnapshotModel::State> states;
  for (auto& c : caches) {
    states.push_back(exp::InOrderSnapshotModel::State{
        std::move(c), std::nullopt, nullptr,
        "mru#" + std::to_string(states.size())});
  }
  const exp::InOrderSnapshotModel model("inorder-mru", {},
                                        std::move(states));
  ASSERT_TRUE(model.supportsPackedReplay());
  exp::ExperimentEngine engine;
  exp::TraceStore store;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto& trace = store.traceFor(prog, inputs[i]);
    const auto& rp = store.compiledFor(prog, inputs[i]);
    for (std::size_t q = 0; q < model.numStates(); ++q) {
      EXPECT_EQ(model.time(q, trace), model.timePacked(q, rp))
          << "q=" << q << " i=" << i;
    }
  }
}

TEST(PackedReplay, ModelFallsBackWhenUnpackable) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 4);
  exp::PlatformOptions opts;
  opts.numStates = 3;
  opts.dataGeom = cache::CacheGeometry{4, 2, 17};  // ways > kMaxPackedWays
  const auto model =
      exp::PlatformRegistry::instance().make("inorder-lru", prog, opts);
  EXPECT_FALSE(model->supportsPackedReplay());
  exp::ExperimentEngine engine;
  const auto m = engine.computeMatrix(*model, prog, inputs);  // legacy path
  EXPECT_EQ(m.numStates(), 3u);
  exp::EngineConfig serial{1};
  serial.usePackedReplay = false;
  exp::ExperimentEngine reference(serial);
  EXPECT_TRUE(m == reference.computeMatrix(*model, prog, inputs));
}

// ------------------------------------------------------ streaming measures

void expectSameValue(const core::PredictabilityValue& a,
                     const core::PredictabilityValue& b) {
  expectSamePredictabilityValue(a, b);
}

TEST(StreamingMeasures, MatchesMatrixEvaluatorsOnRandomGrids) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    std::mt19937_64 rng(seed);
    const std::size_t nQ = 1 + rng() % 9;
    const std::size_t nI = 1 + rng() % 11;
    core::TimingMatrix m(nQ, nI);
    // A narrow value range forces plenty of ties, exercising the witness
    // tie-break rules.
    std::uniform_int_distribution<core::Cycles> d(1, 6);
    std::vector<std::pair<std::size_t, std::size_t>> cells;
    for (std::size_t q = 0; q < nQ; ++q) {
      for (std::size_t i = 0; i < nI; ++i) {
        m.at(q, i) = d(rng);
        cells.emplace_back(q, i);
      }
    }
    // Feed cells in shuffled order, split across two accumulators merged in
    // both directions — the fold must be order-independent.
    std::shuffle(cells.begin(), cells.end(), rng);
    core::StreamingMeasures a(nQ, nI), b(nQ, nI);
    for (std::size_t k = 0; k < cells.size(); ++k) {
      auto& acc = (k % 2 == 0) ? a : b;
      acc.add(cells[k].first, cells[k].second,
              m.at(cells[k].first, cells[k].second));
    }
    core::StreamingMeasures ab(nQ, nI);
    ab.merge(b);
    ab.merge(a);
    a.merge(b);

    for (const auto* acc : {&a, &ab}) {
      EXPECT_EQ(acc->cells(), nQ * nI);
      EXPECT_EQ(acc->bcet(), m.bcet()) << "seed " << seed;
      EXPECT_EQ(acc->wcet(), m.wcet()) << "seed " << seed;
      expectSameValue(acc->pr(), core::timingPredictability(m));
      expectSameValue(acc->sipr(), core::stateInducedPredictability(m));
      expectSameValue(acc->iipr(), core::inputInducedPredictability(m));
    }
  }
}

TEST(StreamingMeasures, MergeRejectsShapeMismatch) {
  core::StreamingMeasures a(2, 3), b(3, 2);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(ReduceCells, MatchesMatrixPathForAnyThreadsTilesAndReplayMode) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 9);
  exp::PlatformOptions opts;
  opts.numStates = 7;
  const auto model =
      exp::PlatformRegistry::instance().make("inorder-fifo", prog, opts);

  exp::EngineConfig refCfg{1, 1, 1};
  exp::ExperimentEngine reference(refCfg);
  const auto matrix = reference.computeMatrix(*model, prog, inputs);

  for (const bool packed : {true, false}) {
    for (int threads : {1, 3, 8}) {
      exp::EngineConfig cfg{threads, 3, 5};
      cfg.usePackedReplay = packed;
      exp::ExperimentEngine engine(cfg);
      const auto acc = engine.reduceCells(*model, prog, inputs);
      EXPECT_EQ(acc.bcet(), matrix.bcet());
      EXPECT_EQ(acc.wcet(), matrix.wcet());
      expectSameValue(acc.pr(), core::timingPredictability(matrix));
      expectSameValue(acc.sipr(), core::stateInducedPredictability(matrix));
      expectSameValue(acc.iipr(), core::inputInducedPredictability(matrix));
      // Streaming never materialized a matrix.
      EXPECT_EQ(engine.matrixBuilds(), 0u);
    }
  }
}

TEST(Query, ExhaustiveWithoutKeepMatrixNeverBuildsTheMatrix) {
  study::Query query;
  query.workload("linearsearch-12").platform("inorder-lru");
  study::Query kept = query;
  kept.keepMatrix(true);

  exp::ExperimentEngine streaming;
  const auto fs = query.run(streaming);
  EXPECT_EQ(streaming.matrixBuilds(), 0u);  // the streaming-path guarantee
  EXPECT_FALSE(fs.matrix.has_value());

  exp::ExperimentEngine materializing;
  const auto fm = kept.run(materializing);
  EXPECT_EQ(materializing.matrixBuilds(), 1u);
  ASSERT_TRUE(fm.matrix.has_value());

  // Same arithmetic on both paths, witnesses included.
  EXPECT_EQ(fs.bcet, fm.bcet);
  EXPECT_EQ(fs.wcet, fm.wcet);
  expectSameValue(fs.pr, fm.pr);
  expectSameValue(fs.sipr, fm.sipr);
  expectSameValue(fs.iipr, fm.iipr);
}

// ------------------------------------------------- worker pool / trace store

TEST(WorkerPool, RunsEveryItemOnceWithDenseWorkerIds) {
  exp::WorkerPool& pool = exp::WorkerPool::shared();
  for (int round = 0; round < 3; ++round) {  // the pool is reusable
    constexpr std::size_t kItems = 257;
    std::vector<std::atomic<int>> counts(kItems);
    std::atomic<bool> badWorker{false};
    pool.run(kItems, 4, [&](std::size_t k, int worker) {
      counts[k].fetch_add(1);
      if (worker < 0 || worker >= 4) badWorker = true;
    });
    for (std::size_t k = 0; k < kItems; ++k) {
      EXPECT_EQ(counts[k].load(), 1) << "item " << k;
    }
    EXPECT_FALSE(badWorker.load());
  }
}

TEST(WorkerPool, PropagatesTheFirstException) {
  exp::WorkerPool& pool = exp::WorkerPool::shared();
  for (int maxWorkers : {1, 4}) {
    EXPECT_THROW(
        pool.run(64, maxWorkers,
                 [&](std::size_t k, int) {
                   if (k == 7) throw std::runtime_error("boom");
                 }),
        std::runtime_error);
  }
  // Still usable afterwards.
  std::atomic<std::size_t> n{0};
  pool.run(16, 4, [&](std::size_t, int) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 16u);
}

TEST(TraceStore, CachesCompiledFormNextToTrace) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 4);
  exp::TraceStore store;
  const auto& rp1 = store.compiledFor(prog, inputs[0]);
  const auto& rp2 = store.compiledFor(prog, inputs[0]);
  EXPECT_EQ(&rp1, &rp2);  // lowered once, stable pointer
  const auto ref = store.entryRefFor(prog, inputs[0]);
  EXPECT_EQ(ref.compiled, &rp1);
  EXPECT_EQ(ref.trace, &store.traceFor(prog, inputs[0]));

  // The compiled form is the lowering of the memoized trace.
  const auto fresh = exp::compileTrace(*ref.trace);
  EXPECT_EQ(fresh.fetchPc, rp1.fetchPc);
  EXPECT_EQ(fresh.dataAddr, rp1.dataAddr);
  EXPECT_EQ(fresh.condBranchPc, rp1.condBranchPc);
  EXPECT_EQ(fresh.condBranchTaken, rp1.condBranchTaken);
  EXPECT_EQ(fresh.sumDivLatency, rp1.sumDivLatency);
}

TEST(TraceStore, ShardedFillFromManyThreadsCountsExactly) {
  const auto prog = testProgram();
  const auto inputs = testInputs(prog, 24);
  exp::TraceStore store;
  exp::WorkerPool::shared().run(inputs.size() * 3, 8, [&](std::size_t k, int) {
    store.entryRefFor(prog, inputs[k % inputs.size()]);
  });
  EXPECT_EQ(store.size(), inputs.size());
  EXPECT_EQ(store.misses(), inputs.size());
  EXPECT_EQ(store.hits() + store.misses(), inputs.size() * 3);
}

}  // namespace
}  // namespace pred
