// cache_structs_test.cpp — Method cache (Schoeberl [23]), split caches
// (Schoeberl et al. [24]) and static locking (Puaut & Decotigny [18]).

#include <gtest/gtest.h>

#include "cache/locking.h"
#include "cache/method_cache.h"
#include "cache/split_cache.h"
#include "isa/ast.h"
#include "isa/exec.h"
#include "isa/workloads.h"

namespace pred::cache {
namespace {

TEST(MethodCache, MissLoadsWholeFunction) {
  MethodCache mc(64, MethodCacheTiming{0, 4, 1});
  const auto lat = mc.onEnter(0, 16);
  EXPECT_EQ(lat, 4u + 16u);
  EXPECT_TRUE(mc.resident(0));
  EXPECT_EQ(mc.onEnter(0, 16), 0u);  // hit
  EXPECT_EQ(mc.hits(), 1u);
  EXPECT_EQ(mc.misses(), 1u);
}

TEST(MethodCache, FifoEvictionOfVariableBlocks) {
  MethodCache mc(32, MethodCacheTiming{});
  mc.onEnter(0, 16);
  mc.onEnter(1, 16);  // full
  mc.onEnter(2, 8);   // evicts fn 0 (oldest)
  EXPECT_FALSE(mc.resident(0));
  EXPECT_TRUE(mc.resident(1));
  EXPECT_TRUE(mc.resident(2));
}

TEST(MethodCache, EvictsMultipleWhenLargeBlockArrives) {
  MethodCache mc(32, MethodCacheTiming{});
  mc.onEnter(0, 8);
  mc.onEnter(1, 8);
  mc.onEnter(2, 8);
  mc.onEnter(3, 32);  // needs everything
  EXPECT_FALSE(mc.resident(0));
  EXPECT_FALSE(mc.resident(1));
  EXPECT_FALSE(mc.resident(2));
  EXPECT_TRUE(mc.resident(3));
}

TEST(MethodCache, OversizedFunctionThrows) {
  MethodCache mc(8, MethodCacheTiming{});
  EXPECT_THROW(mc.onEnter(0, 16), std::runtime_error);
}

TEST(MethodCache, ResetClearsEverything) {
  MethodCache mc(32, MethodCacheTiming{});
  mc.onEnter(0, 8);
  mc.reset();
  EXPECT_FALSE(mc.resident(0));
  EXPECT_EQ(mc.hits() + mc.misses(), 0u);
}

TEST(SplitCache, RoutesByRegion) {
  isa::MemoryLayout layout;  // static < 1024, stack < 2048, heap >= 2048
  SplitCache sc(SplitCacheConfig{}, layout);
  sc.access(100);    // static
  sc.access(1500);   // stack
  sc.access(3000);   // heap
  EXPECT_EQ(sc.staticCache().misses(), 1u);
  EXPECT_EQ(sc.stackCache().misses(), 1u);
  EXPECT_EQ(sc.heapCache().misses(), 1u);
  EXPECT_EQ(sc.misses(), 3u);
}

TEST(SplitCache, HeapTrafficCannotEvictStaticData) {
  isa::MemoryLayout layout;
  SplitCache sc(SplitCacheConfig{}, layout);
  sc.access(100);  // static resident
  for (std::int64_t a = 2048; a < 2048 + 512; a += 4) sc.access(a);
  EXPECT_TRUE(sc.staticCache().contains(100));
  EXPECT_TRUE(sc.access(100).hit);
}

TEST(SplitCache, UnifiedBaselineSuffersHeapEviction) {
  // Contrast case: same traffic through one unified cache of comparable
  // total size evicts the static line.
  SetAssocCache unified(CacheGeometry{4, 8, 2}, Policy::LRU, CacheTiming{});
  unified.access(100);
  for (std::int64_t a = 2048; a < 2048 + 512; a += 4) unified.access(a);
  EXPECT_FALSE(unified.contains(100));
}

TEST(SplitCache, HeapCacheIsFullyAssociative) {
  SplitCacheConfig cfg;
  EXPECT_EQ(cfg.heapGeom.numSets, 1);
  isa::MemoryLayout layout;
  SplitCache sc(cfg, layout);
  // Fill heap cache to its associativity; all lines coexist regardless of
  // address bits (no set conflicts).
  const int ways = cfg.heapGeom.ways;
  for (int k = 0; k < ways; ++k) {
    sc.access(2048 + k * 64 * cfg.heapGeom.lineWords);
  }
  EXPECT_EQ(sc.heapCache().misses(), static_cast<std::uint64_t>(ways));
  for (int k = 0; k < ways; ++k) {
    EXPECT_TRUE(sc.heapCache().contains(2048 + k * 64 * cfg.heapGeom.lineWords));
  }
}

TEST(SplitCache, ResetAllThree) {
  isa::MemoryLayout layout;
  SplitCache sc(SplitCacheConfig{}, layout);
  sc.access(100);
  sc.access(3000);
  sc.reset();
  EXPECT_EQ(sc.hits() + sc.misses(), 0u);
  EXPECT_FALSE(sc.staticCache().contains(100));
}

// ---------------------------------------------------------------------------
// Static cache locking.
// ---------------------------------------------------------------------------

TEST(Locking, SelectByProfilePicksHottest) {
  std::map<std::int64_t, std::uint64_t> freq{{0, 100}, {1, 5}, {2, 50}, {3, 7}};
  const auto sel = selectByProfile(freq, 2);
  ASSERT_EQ(sel.lines.size(), 2u);
  EXPECT_EQ(sel.lines[0], 0);
  EXPECT_EQ(sel.lines[1], 2);
}

TEST(Locking, SelectByStaticWeightPrefersLoopLines) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(32));
  isa::Cfg cfg(prog);
  CacheGeometry geom{4, 8, 2};
  const auto sel = selectByStaticWeight(cfg, geom, 2);
  ASSERT_EQ(sel.lines.size(), 2u);
  // The selected lines must be inside the loop body (weight 32), which
  // occupies the middle of the program.
  auto run = isa::FunctionalCore::run(prog, isa::Input{});
  const auto profile = lineProfile(run.trace, geom);
  for (const auto line : sel.lines) {
    EXPECT_GT(profile.at(line), 16u);
  }
}

TEST(Locking, LockedLinesAlwaysHit) {
  LockedICache ic(CacheGeometry{4, 8, 2}, CacheTiming{1, 10},
                  LockSelection{{0, 1}});
  EXPECT_TRUE(ic.fetch(0).hit);    // line 0
  EXPECT_TRUE(ic.fetch(3).hit);    // still line 0
  EXPECT_TRUE(ic.fetch(4).hit);    // line 1
  EXPECT_FALSE(ic.fetch(8).hit);   // line 2: unlocked -> memory
  EXPECT_FALSE(ic.fetch(8).hit);   // stays a miss: nothing is ever loaded
}

TEST(Locking, GuaranteedHitsMatchMeasuredHits) {
  // With locking, the static guarantee equals the measurement — that is
  // the whole point (statically computed bound == actual).
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(16));
  isa::Cfg cfg(prog);
  CacheGeometry geom{4, 8, 2};
  const auto sel = selectByStaticWeight(cfg, geom, 4);
  auto run = isa::FunctionalCore::run(prog, isa::Input{});
  const auto guaranteed = guaranteedHits(run.trace, geom, sel);
  LockedICache ic(geom, CacheTiming{1, 10}, sel);
  for (const auto& rec : run.trace) ic.fetch(rec.pc);
  EXPECT_EQ(ic.hits(), guaranteed);
}

TEST(Locking, UnlockedHitsUnderPreemptionCountsTheWholeTrace) {
  // Trace-total semantics (the behavior change the ROADMAP "Semantics audit
  // of unlockedHitsUnderPreemption" item called for, replacing the seed's
  // hits-since-last-preemption tail window): preemptions trash the cache
  // but never the accounting, so hits from EVERY window count.  The
  // period-4 case below is exactly the one where the two semantics visibly
  // differ: the tail window holds 2 hits, the trace total 7 — a value the
  // old accounting could not produce for this trace and period.
  const CacheGeometry geom{4, 8, 2};
  const CacheTiming timing{1, 10};
  isa::Trace trace;
  for (int k = 0; k < 10; ++k) {
    isa::ExecRecord rec;
    rec.pc = 0;  // every fetch maps to the same line
    trace.push_back(rec);
  }

  // period 4 with reset-BEFORE-access on the 4th and 8th fetches:
  //   n:  1     2    3    4            5    6    7    8            9   10
  //       miss  hit  hit  reset+miss   hit  hit  hit  reset+miss   hit hit
  // windows hold 2 + 3 + 2 hits; the trace total is 7.
  EXPECT_EQ(unlockedHitsUnderPreemption(trace, geom, Policy::LRU, timing, 4),
            7u);
  // ... and visibly NOT the tail window's 2.
  EXPECT_NE(unlockedHitsUnderPreemption(trace, geom, Policy::LRU, timing, 4),
            2u);
  // Without preemption the single window is the whole trace: 9 of 10 hit.
  EXPECT_EQ(unlockedHitsUnderPreemption(trace, geom, Policy::LRU, timing, 0),
            9u);
  // A period longer than the trace never fires: same as no preemption.
  EXPECT_EQ(unlockedHitsUnderPreemption(trace, geom, Policy::LRU, timing, 64),
            9u);
  // Trace-total accounting is policy-independent on a single-line stream.
  for (const auto policy :
       {Policy::FIFO, Policy::PLRU, Policy::MRU, Policy::RANDOM}) {
    EXPECT_EQ(unlockedHitsUnderPreemption(trace, geom, policy, timing, 4), 7u)
        << toString(policy);
  }
  // The nested (non-packable, ways > kMaxPackedWays) replay path shares the
  // accounting fix: same stream, same periods, same totals.
  const CacheGeometry wide{4, 1, 32};
  EXPECT_EQ(unlockedHitsUnderPreemption(trace, wide, Policy::LRU, timing, 4),
            7u);
  EXPECT_EQ(unlockedHitsUnderPreemption(trace, wide, Policy::LRU, timing, 0),
            9u);
}

TEST(Locking, LockedHitsUnderPreemptionWereAlwaysTraceTotal) {
  // lockedHitsUnderPreemption delegates to guaranteedHits, which scans the
  // whole trace — it never shared the tail-window defect.  Pin that: the
  // locked count is period-invariant AND equals the full-trace guarantee.
  const CacheGeometry geom{4, 8, 2};
  const CacheTiming timing{1, 10};
  isa::Trace trace;
  for (int k = 0; k < 10; ++k) {
    isa::ExecRecord rec;
    rec.pc = 0;
    trace.push_back(rec);
  }
  LockSelection sel;
  sel.lines.push_back(geom.lineOf(0));
  const auto guaranteed = guaranteedHits(trace, geom, sel);
  EXPECT_EQ(guaranteed, 10u);
  for (const std::uint64_t period : {0ull, 1ull, 4ull, 64ull}) {
    EXPECT_EQ(lockedHitsUnderPreemption(trace, geom, timing, sel, period),
              guaranteed)
        << "period=" << period;
  }
}

TEST(Locking, ProfileSelectionBeatsNaiveOnItsTrainingTrace) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(16));
  auto run = isa::FunctionalCore::run(prog, isa::Input{});
  CacheGeometry geom{4, 8, 2};
  const auto profile = lineProfile(run.trace, geom);
  const auto good = selectByProfile(profile, 2);
  // Naive: lock the coldest lines.
  std::map<std::int64_t, std::uint64_t> inverted;
  for (const auto& [line, f] : profile) inverted[line] = 1000000 - f;
  const auto bad = selectByProfile(inverted, 2);
  EXPECT_GT(guaranteedHits(run.trace, geom, good),
            guaranteedHits(run.trace, geom, bad));
}

}  // namespace
}  // namespace pred::cache
