// cache_test.cpp — Set-associative cache simulation: per-policy replacement
// behavior, state signatures, initial-state enumeration.

#include <gtest/gtest.h>

#include "cache/set_assoc.h"

namespace pred::cache {
namespace {

CacheGeometry tinyGeom(int ways, std::int64_t sets = 1,
                       std::int64_t lineWords = 1) {
  return CacheGeometry{lineWords, sets, ways};
}

SetAssocCache make(Policy p, int ways, std::int64_t sets = 1) {
  return SetAssocCache(tinyGeom(ways, sets), p, CacheTiming{1, 10});
}

TEST(SetAssoc, ColdMissThenHit) {
  auto c = make(Policy::LRU, 2);
  EXPECT_FALSE(c.access(0).hit);
  EXPECT_TRUE(c.access(0).hit);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(SetAssoc, LatenciesMatchTiming) {
  auto c = make(Policy::LRU, 2);
  EXPECT_EQ(c.access(0).latency, 10u);  // miss
  EXPECT_EQ(c.access(0).latency, 1u);   // hit
}

TEST(SetAssoc, LruEvictsLeastRecentlyUsed) {
  auto c = make(Policy::LRU, 2);
  c.access(0);
  c.access(1);
  c.access(0);      // 0 is MRU, 1 is LRU
  c.access(2);      // evicts 1
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
}

TEST(SetAssoc, FifoIgnoresHits) {
  auto c = make(Policy::FIFO, 2);
  c.access(0);
  c.access(1);
  c.access(0);  // hit: does NOT refresh 0's position
  c.access(2);  // evicts 0 (inserted first)
  EXPECT_FALSE(c.contains(0));
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
}

TEST(SetAssoc, LruHitRefreshesPosition) {
  auto c = make(Policy::LRU, 2);
  c.access(0);
  c.access(1);
  c.access(0);  // hit: refreshes 0
  c.access(2);  // evicts 1 (contrast with the FIFO test)
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(1));
}

TEST(SetAssoc, PlruFourWaySequence) {
  auto c = make(Policy::PLRU, 4);
  // Fill 0..3; then access 0; victim must not be 0.
  for (std::int64_t a = 0; a < 4; ++a) c.access(a);
  c.access(0);
  c.access(4);
  EXPECT_TRUE(c.contains(0));
  int present = 0;
  for (std::int64_t a = 0; a < 5; ++a) present += c.contains(a) ? 1 : 0;
  EXPECT_EQ(present, 4);
}

TEST(SetAssoc, PlruRequiresPowerOfTwo) {
  EXPECT_THROW(make(Policy::PLRU, 3), std::runtime_error);
  EXPECT_NO_THROW(make(Policy::PLRU, 4));
}

TEST(SetAssoc, MruKeepsRecentlyUsed) {
  auto c = make(Policy::MRU, 4);
  for (std::int64_t a = 0; a < 4; ++a) c.access(a);
  // After the 4th touch the MRU bits were reset except the last-touched.
  c.access(3);
  c.access(4);  // victim = first way with mru bit 0
  EXPECT_TRUE(c.contains(3));
}

TEST(SetAssoc, RandomIsDeterministicPerSeed) {
  auto a = SetAssocCache(tinyGeom(4), Policy::RANDOM, CacheTiming{}, 99);
  auto b = SetAssocCache(tinyGeom(4), Policy::RANDOM, CacheTiming{}, 99);
  for (std::int64_t addr = 0; addr < 32; ++addr) {
    EXPECT_EQ(a.access(addr).hit, b.access(addr).hit);
  }
  EXPECT_EQ(a.stateSignature(), b.stateSignature());
}

TEST(SetAssoc, SetMappingSeparatesLines) {
  // 2 sets, line of 2 words: words 0,1 -> set 0; words 2,3 -> set 1.
  SetAssocCache c(CacheGeometry{2, 2, 1}, Policy::LRU, CacheTiming{});
  c.access(0);
  EXPECT_TRUE(c.contains(1));   // same line
  EXPECT_FALSE(c.contains(2));  // other set
  c.access(2);
  EXPECT_TRUE(c.contains(0));   // direct-mapped per set: no conflict
}

TEST(SetAssoc, ConflictMissesWithinSet) {
  // 1 set, 1 way: any two distinct lines conflict.
  SetAssocCache c(CacheGeometry{1, 1, 1}, Policy::LRU, CacheTiming{});
  c.access(0);
  c.access(1);
  EXPECT_FALSE(c.contains(0));
}

TEST(SetAssoc, ResetRestoresEmpty) {
  auto c = make(Policy::LRU, 2);
  c.access(0);
  c.access(1);
  const auto sigBefore = c.stateSignature();
  c.reset();
  EXPECT_FALSE(c.contains(0));
  EXPECT_NE(c.stateSignature(), sigBefore);
  EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(SetAssoc, WarmUpClearsCounters) {
  auto c = make(Policy::LRU, 2);
  c.warmUp({0, 1, 2, 3});
  EXPECT_EQ(c.hits() + c.misses(), 0u);
  EXPECT_TRUE(c.contains(2) || c.contains(3));
}

TEST(SetAssoc, StateSignatureDistinguishesPolicyMetadata) {
  auto a = make(Policy::LRU, 2);
  auto b = make(Policy::LRU, 2);
  a.access(0);
  a.access(1);
  b.access(1);
  b.access(0);
  // Same contents, different recency order.
  EXPECT_NE(a.stateSignature(), b.stateSignature());
}

TEST(SetAssoc, EnumerateInitialStatesDistinct) {
  const auto states = enumerateInitialStates(CacheGeometry{4, 4, 2},
                                             Policy::LRU, CacheTiming{}, 5,
                                             1234, 512);
  ASSERT_EQ(states.size(), 5u);
  for (std::size_t a = 0; a < states.size(); ++a) {
    for (std::size_t b = a + 1; b < states.size(); ++b) {
      EXPECT_NE(states[a].stateSignature(), states[b].stateSignature());
    }
  }
}

// Parameterized: every policy obeys basic cache axioms.
class PolicyAxioms : public ::testing::TestWithParam<Policy> {};

TEST_P(PolicyAxioms, AccessedLineIsResident) {
  auto c = SetAssocCache(tinyGeom(4, 2, 2), GetParam(), CacheTiming{}, 7);
  for (std::int64_t a = 0; a < 64; a += 3) {
    c.access(a);
    EXPECT_TRUE(c.contains(a)) << toString(GetParam()) << " addr " << a;
  }
}

TEST_P(PolicyAxioms, OccupancyNeverExceedsWays) {
  auto c = SetAssocCache(tinyGeom(2, 1, 1), GetParam(), CacheTiming{}, 7);
  for (std::int64_t a = 0; a < 16; ++a) c.access(a);
  int resident = 0;
  for (std::int64_t a = 0; a < 16; ++a) resident += c.contains(a) ? 1 : 0;
  EXPECT_LE(resident, 2);
}

TEST_P(PolicyAxioms, RepeatedAccessAlwaysHits) {
  auto c = SetAssocCache(tinyGeom(2, 2, 1), GetParam(), CacheTiming{}, 7);
  c.access(5);
  for (int k = 0; k < 4; ++k) EXPECT_TRUE(c.access(5).hit);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyAxioms,
                         ::testing::Values(Policy::LRU, Policy::FIFO,
                                           Policy::PLRU, Policy::MRU,
                                           Policy::RANDOM),
                         [](const ::testing::TestParamInfo<Policy>& info) {
                           return toString(info.param);
                         });

}  // namespace
}  // namespace pred::cache
