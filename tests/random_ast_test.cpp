// random_ast_test.cpp — Property-based differential testing over randomly
// generated structured programs: for every seed,
//   * both code generators produce valid, terminating programs,
//   * branchy and single-path compilations compute identical results for
//     every input tried,
//   * the single-path trace is input-independent,
//   * the structural bounds are sound (LB <= measured <= UB).

#include <gtest/gtest.h>

#include "analysis/exhaustive.h"
#include "analysis/wcet_bounds.h"
#include "isa/ast.h"
#include "isa/exec.h"
#include "isa/singlepath.h"
#include "isa/workloads.h"

namespace pred {
namespace {

std::int64_t readVar(const isa::Program& p, const isa::MachineState& st,
                     const std::string& name) {
  return st.mem[static_cast<std::size_t>(p.variables.at(name))];
}

isa::Input inputFor(const isa::Program& p, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  isa::Input in;
  for (int k = 0; k < 4; ++k) {
    in = isa::mergeInputs(
        in, isa::varInput(p, "x" + std::to_string(k),
                          static_cast<std::int64_t>(rng() % 32) - 8));
  }
  const auto base = p.variables.at("a");
  for (int k = 0; k < 8; ++k) {
    in.mem[base + k] = static_cast<std::int64_t>(rng() % 64) - 16;
  }
  return in;
}

class RandomAstDifferential : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomAstDifferential, BranchyAndSinglePathAgree) {
  const auto seed = GetParam();
  const auto ast = isa::workloads::randomAst(seed);
  const auto branchy = isa::ast::compileBranchy(ast);
  const auto single = isa::ast::compileSinglePath(ast);
  ASSERT_FALSE(branchy.validate().has_value());
  ASSERT_FALSE(single.validate().has_value());

  std::vector<std::int32_t> refPcs;
  for (std::uint64_t inputSeed = 1; inputSeed <= 5; ++inputSeed) {
    const auto ib = inputFor(branchy, seed * 100 + inputSeed);
    const auto is = inputFor(single, seed * 100 + inputSeed);
    const auto rb = isa::FunctionalCore::run(branchy, ib);
    const auto rs = isa::FunctionalCore::run(single, is);
    ASSERT_TRUE(rb.completed) << "branchy did not halt, seed " << seed;
    ASSERT_TRUE(rs.completed) << "single-path did not halt, seed " << seed;

    // Same observable results.
    for (const auto& name : {"r0", "r1", "r2", "r3"}) {
      EXPECT_EQ(readVar(branchy, rb.finalState, name),
                readVar(single, rs.finalState, name))
          << "seed " << seed << " input " << inputSeed << " var " << name;
    }
    const auto baseB = branchy.variables.at("a");
    const auto baseS = single.variables.at("a");
    for (int k = 0; k < 8; ++k) {
      EXPECT_EQ(rb.finalState.mem[static_cast<std::size_t>(baseB + k)],
                rs.finalState.mem[static_cast<std::size_t>(baseS + k)])
          << "seed " << seed << " a[" << k << "]";
    }

    // Single-path pc stream identical across inputs.
    std::vector<std::int32_t> pcs;
    pcs.reserve(rs.trace.size());
    for (const auto& rec : rs.trace) pcs.push_back(rec.pc);
    if (refPcs.empty()) {
      refPcs = std::move(pcs);
    } else {
      EXPECT_EQ(pcs, refPcs) << "single-path trace varies, seed " << seed;
    }
  }
}

TEST_P(RandomAstDifferential, BoundsSound) {
  const auto seed = GetParam();
  const auto prog = isa::ast::compileBranchy(isa::workloads::randomAst(seed));
  isa::Cfg cfg(prog);
  analysis::BoundsInputs bi;
  bi.dataCacheGeom = cache::CacheGeometry{4, 8, 2};
  bi.cacheTiming = cache::CacheTiming{1, 10};
  const auto ub = analysis::ipetUpperBound(cfg, bi);
  const auto lb = analysis::structuralLowerBound(cfg, bi);

  std::vector<isa::Input> inputs;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    inputs.push_back(inputFor(prog, seed * 991 + s));
  }
  const auto setup = analysis::exhaustiveInOrder(
      prog, inputs, bi.dataCacheGeom, cache::Policy::LRU, bi.cacheTiming, 4,
      seed, bi.pipeConfig);
  EXPECT_LE(lb, setup.matrix.bcet()) << "seed " << seed;
  EXPECT_GE(ub, setup.matrix.wcet()) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomAstDifferential,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(RandomAst, GeneratorIsDeterministic) {
  const auto a = isa::ast::compileBranchy(isa::workloads::randomAst(7));
  const auto b = isa::ast::compileBranchy(isa::workloads::randomAst(7));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a.code[k].op, b.code[k].op);
    EXPECT_EQ(a.code[k].imm, b.code[k].imm);
  }
}

TEST(RandomAst, SeedsProduceDistinctPrograms) {
  const auto a = isa::ast::compileBranchy(isa::workloads::randomAst(1));
  const auto b = isa::ast::compileBranchy(isa::workloads::randomAst(2));
  bool differ = a.size() != b.size();
  for (std::size_t k = 0; !differ && k < a.size(); ++k) {
    differ = a.code[k].op != b.code[k].op || a.code[k].imm != b.code[k].imm;
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace pred
