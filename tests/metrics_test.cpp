// metrics_test.cpp — The evict/fill inherent predictability metrics of
// replacement policies (Reineke et al. [20], the paper's Section 4).
//
// These metrics are computed by exhaustive exploration of the possible
// cache-set states (metrics.cpp); the tests pin the closed forms known from
// the literature for LRU and FIFO and check the qualitative order the paper
// reports: LRU is the most predictable policy, RANDOM cannot guarantee
// eviction at all.

#include <gtest/gtest.h>

#include "cache/metrics.h"

namespace pred::cache {
namespace {

TEST(Metrics, LruEvictAndFillEqualAssociativity) {
  // Literature closed form: evict(LRU,k) = fill(LRU,k) = k.
  for (int k : {1, 2, 4, 8}) {
    const auto r = computeMetrics(Policy::LRU, k);
    ASSERT_TRUE(r.evictFinite) << "k=" << k;
    ASSERT_TRUE(r.fillFinite) << "k=" << k;
    EXPECT_EQ(r.evict, k);
    EXPECT_EQ(r.fill, k);
  }
}

TEST(Metrics, FifoEvictIsTwoKMinusOne) {
  // Literature closed form: evict(FIFO,k) = 2k-1 (k-1 accesses may alias
  // cached content and not advance the queue).
  for (int k : {2, 4, 8}) {
    const auto r = computeMetrics(Policy::FIFO, k);
    ASSERT_TRUE(r.evictFinite) << "k=" << k;
    EXPECT_EQ(r.evict, 2 * k - 1);
  }
}

TEST(Metrics, FifoFillFiniteAndAtLeastEvict) {
  for (int k : {2, 4}) {
    const auto r = computeMetrics(Policy::FIFO, k);
    ASSERT_TRUE(r.fillFinite);
    EXPECT_GE(r.fill, r.evict);
  }
}

TEST(Metrics, PlruEvictMatchesClosedForm) {
  // Literature: evict(PLRU,k) = (k/2) * log2(k) + 1.
  const auto r4 = computeMetrics(Policy::PLRU, 4);
  ASSERT_TRUE(r4.evictFinite);
  EXPECT_EQ(r4.evict, 5);  // 4/2*2 + 1
  const auto r2 = computeMetrics(Policy::PLRU, 2);
  ASSERT_TRUE(r2.evictFinite);
  EXPECT_EQ(r2.evict, 2);  // PLRU(2) == LRU(2)
}

TEST(Metrics, Plru2EqualsLru2) {
  const auto plru = computeMetrics(Policy::PLRU, 2);
  const auto lru = computeMetrics(Policy::LRU, 2);
  EXPECT_EQ(plru.evict, lru.evict);
  EXPECT_EQ(plru.fill, lru.fill);
}

TEST(Metrics, RandomNeverGuaranteesEviction) {
  const auto r = computeMetrics(Policy::RANDOM, 2, /*cutoff=*/24,
                                /*stateLimit=*/2'000'000);
  EXPECT_FALSE(r.evictFinite);
  EXPECT_FALSE(r.fillFinite);
}

TEST(Metrics, LruDominatesAllPoliciesInEvict) {
  // The paper's narrative ([20], [29]): LRU is the most predictable
  // replacement policy.  evict(LRU) <= evict(P) for all P at equal k.
  for (int k : {2, 4}) {
    const auto lru = computeMetrics(Policy::LRU, k);
    for (Policy p : {Policy::FIFO, Policy::PLRU, Policy::MRU}) {
      const auto other = computeMetrics(p, k);
      if (other.evictFinite) {
        EXPECT_LE(lru.evict, other.evict)
            << toString(p) << " k=" << k;
      }
      if (other.fillFinite) {
        EXPECT_LE(lru.fill, other.fill) << toString(p) << " k=" << k;
      }
    }
  }
}

TEST(Metrics, EvictNeverExceedsFill) {
  // Knowing the precise contents implies knowing old content is gone.
  for (Policy p : {Policy::LRU, Policy::FIFO, Policy::PLRU, Policy::MRU}) {
    const auto r = computeMetrics(p, 4);
    if (r.evictFinite && r.fillFinite) {
      EXPECT_LE(r.evict, r.fill) << toString(p);
    }
  }
}

TEST(Metrics, MonotoneInAssociativity) {
  // More ways = more uncertainty to eliminate.
  for (Policy p : {Policy::LRU, Policy::FIFO}) {
    const auto r2 = computeMetrics(p, 2);
    const auto r4 = computeMetrics(p, 4);
    ASSERT_TRUE(r2.evictFinite && r4.evictFinite);
    EXPECT_LT(r2.evict, r4.evict) << toString(p);
  }
}

TEST(Metrics, SummaryRendersInfinity) {
  const auto r = computeMetrics(Policy::RANDOM, 2, 16);
  EXPECT_NE(r.summary().find("inf"), std::string::npos);
}

TEST(Metrics, RejectsNonPositiveWays) {
  EXPECT_THROW(computeMetrics(Policy::LRU, 0), std::runtime_error);
}

TEST(Metrics, SingleWayTrivial) {
  const auto r = computeMetrics(Policy::LRU, 1);
  EXPECT_EQ(r.evict, 1);
  EXPECT_EQ(r.fill, 1);
}

}  // namespace
}  // namespace pred::cache
