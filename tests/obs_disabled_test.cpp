// obs_disabled_test.cpp — the PRED_OBS_DISABLED contract.  This translation
// unit is compiled with the macro defined (see CMakeLists.txt), selecting
// the obs_off inline namespace: Span/PhaseTimer/WorkerTimer become empty
// no-op types with zero state and no clock reads, while counters and the
// registry stay fully functional (tests and the engine's accessor shims
// depend on counter VALUES, only the timing instrumentation compiles out).
#ifndef PRED_OBS_DISABLED
#error "this test must be built with PRED_OBS_DISABLED (see CMakeLists.txt)"
#endif

#include <gtest/gtest.h>

#include <type_traits>

#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/span.h"

namespace pred {
namespace {

// The zero-overhead claim, enforced at compile time: disabled timers carry
// no members, so the optimizer erases them entirely.
static_assert(!obs::compiledIn());
static_assert(std::is_empty_v<obs::Span>);
static_assert(std::is_empty_v<obs::PhaseTimer>);
static_assert(std::is_empty_v<obs::WorkerTimer>);

TEST(ObsDisabled, TimersAreInertAgainstLiveMetrics) {
  obs::MetricsRegistry reg;
  obs::PhaseAccum& p = reg.phase("resolve");
  obs::WorkerUtil util(2);
  {
    obs::Span span(&p);
    obs::Span disarmed(nullptr);
    obs::PhaseTimer timer(reg, "resolve");
    obs::WorkerTimer wt(&util, 0);
    wt.addItem();
    wt.addItem();
  }
  // Nothing recorded: no spans, no busy time, no items.
  EXPECT_EQ(p.count(), 0u);
  EXPECT_EQ(p.totalNs(), 0u);
  EXPECT_EQ(util.busyNs(0), 0u);
  EXPECT_EQ(util.items(0), 0u);
  EXPECT_EQ(util.participations(0), 0u);
}

TEST(ObsDisabled, CountersAndReportsStayFunctional) {
  obs::MetricsRegistry reg;
  reg.counter("engine.cells").add(4096);
  reg.phase("resolve");  // present but never timed
  obs::WorkerUtil util(1);

  const obs::RunReport r = obs::snapshotReport(reg, util);
  EXPECT_EQ(r.counter("engine.cells"), 4096u);
  // Idle phases are dropped by a delta but kept by a raw snapshot; either
  // way the wire format round-trips unchanged.
  EXPECT_EQ(obs::RunReport::deserialize(r.serialize()).serialize(),
            r.serialize());
}

}  // namespace
}  // namespace pred
