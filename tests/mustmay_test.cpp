// mustmay_test.cpp — Soundness and precision of the LRU must/may abstract
// cache analysis, including the split-cache classification experiment.
//
// Soundness is checked differentially: whenever the analysis classifies an
// access Always-Hit (resp. Always-Miss), concrete simulation from MANY
// random initial cache states must observe a hit (resp. miss) at every
// dynamic occurrence of that access.

#include <gtest/gtest.h>

#include "cache/mustmay.h"
#include "cache/set_assoc.h"
#include "isa/ast.h"
#include "isa/exec.h"
#include "isa/workloads.h"
#include "pipeline/memory_iface.h"

namespace pred::cache {
namespace {

TEST(AbstractCache, ExactAccessBecomesMustHit) {
  AbstractCache ac(CacheGeometry{1, 4, 2});
  EXPECT_EQ(ac.classify(5), AccessClass::Unclassified);  // unknown initial
  ac.accessExact(5);
  EXPECT_EQ(ac.classify(5), AccessClass::AlwaysHit);
}

TEST(AbstractCache, MustEvictionByAging) {
  AbstractCache ac(CacheGeometry{1, 1, 2});  // one set, 2 ways
  ac.accessExact(0);
  ac.accessExact(1);
  EXPECT_TRUE(ac.mustContain(0));
  ac.accessExact(2);  // ages 0 out (age 2 == ways)
  EXPECT_FALSE(ac.mustContain(0));
  EXPECT_TRUE(ac.mustContain(2));
  EXPECT_TRUE(ac.mustContain(1));
}

TEST(AbstractCache, HitRefreshesMustAge) {
  AbstractCache ac(CacheGeometry{1, 1, 2});
  ac.accessExact(0);
  ac.accessExact(1);
  ac.accessExact(0);  // refresh
  ac.accessExact(2);  // evicts 1, not 0
  EXPECT_TRUE(ac.mustContain(0));
  EXPECT_FALSE(ac.mustContain(1));
}

TEST(AbstractCache, InitialStateIsTainted) {
  AbstractCache ac(CacheGeometry{1, 4, 2});
  // Unknown initial contents: nothing is Always-Miss.
  EXPECT_NE(ac.classify(123), AccessClass::AlwaysMiss);
}

TEST(AbstractCache, UnknownAccessDestroysMustInfo) {
  AbstractCache ac(CacheGeometry{1, 1, 4});
  ac.accessExact(0);
  for (int k = 0; k < 4; ++k) ac.accessUnknown();
  EXPECT_FALSE(ac.mustContain(0));
}

TEST(AbstractCache, RangeAccessAgesOnlyTouchedSets) {
  AbstractCache ac(CacheGeometry{1, 8, 1});  // 8 sets, direct mapped
  ac.accessExact(0);  // set 0
  ac.accessExact(3);  // set 3
  ac.accessRange(3, 4);  // touches sets 3 and 4 only
  EXPECT_TRUE(ac.mustContain(0));   // set 0 untouched
  EXPECT_FALSE(ac.mustContain(3));  // aged out (1 way)
}

TEST(AbstractCache, JoinIntersectsMust) {
  AbstractCache a(CacheGeometry{1, 1, 4});
  AbstractCache b(CacheGeometry{1, 1, 4});
  a.accessExact(0);
  a.accessExact(1);
  b.accessExact(1);
  b.accessExact(2);
  a.joinWith(b);
  EXPECT_FALSE(a.mustContain(0));  // only in one branch
  EXPECT_TRUE(a.mustContain(1));   // in both
  EXPECT_FALSE(a.mustContain(2));
}

TEST(AbstractCache, JoinKeepsWorstMustAge) {
  AbstractCache a(CacheGeometry{1, 1, 2});
  AbstractCache b(CacheGeometry{1, 1, 2});
  a.accessExact(7);             // age 0 in a
  b.accessExact(7);
  b.accessExact(8);             // 7 has age 1 in b
  a.joinWith(b);
  a.accessExact(9);             // must age 7 out if its age was 1
  EXPECT_FALSE(a.mustContain(7));
}

// ---------------------------------------------------------------------------
// Whole-program classification: soundness by differential testing.
// ---------------------------------------------------------------------------

struct SoundnessCase {
  std::string name;
  isa::ast::AstProgram ast;
  std::string arrayName;
  std::int64_t arrayLen;
};

class ClassificationSoundness
    : public ::testing::TestWithParam<SoundnessCase> {};

TEST_P(ClassificationSoundness, AhAndAmAgreeWithSimulation) {
  const auto& sc = GetParam();
  const auto prog = isa::ast::compileBranchy(sc.ast);
  isa::Cfg cfg(prog);
  const CacheGeometry geom{4, 8, 2};
  const auto cls =
      classifyDataAccesses(cfg, geom, syntacticOracle(prog));

  std::vector<isa::Input> inputs{isa::Input{}};
  if (!sc.arrayName.empty()) {
    auto more = isa::workloads::randomArrayInputs(prog, sc.arrayName,
                                                  sc.arrayLen, 4, 99, 16);
    inputs.insert(inputs.end(), more.begin(), more.end());
  }
  const auto states = enumerateInitialStates(geom, Policy::LRU, CacheTiming{},
                                             6, 321, prog.layout.memWords);

  for (const auto& in : inputs) {
    auto run = isa::FunctionalCore::run(prog, in);
    ASSERT_TRUE(run.completed);
    for (const auto& st : states) {
      SetAssocCache sim = st;  // fresh copy of the initial state
      for (const auto& rec : run.trace) {
        if (rec.memWordAddr < 0) continue;
        const bool hit = sim.access(rec.memWordAddr).hit;
        auto it = cls.classOf.find(rec.pc);
        if (it == cls.classOf.end()) continue;
        if (it->second == AccessClass::AlwaysHit) {
          EXPECT_TRUE(hit) << sc.name << " pc=" << rec.pc << " claimed AH";
        } else if (it->second == AccessClass::AlwaysMiss) {
          EXPECT_FALSE(hit) << sc.name << " pc=" << rec.pc << " claimed AM";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, ClassificationSoundness,
    ::testing::Values(
        SoundnessCase{"sumLoop", isa::workloads::sumLoop(8), "a", 8},
        SoundnessCase{"linearSearch", isa::workloads::linearSearch(8), "a", 8},
        SoundnessCase{"branchTree", isa::workloads::branchTree(3), "", 0},
        SoundnessCase{"heapMix", isa::workloads::heapMix(6), "stat", 6},
        SoundnessCase{"divKernel", isa::workloads::divKernel(6), "a", 6}),
    [](const ::testing::TestParamInfo<SoundnessCase>& info) {
      return info.param.name;
    });

TEST(Classification, ScalarReaccessBecomesHit) {
  // s is read and written every iteration: after the first iteration the
  // analysis can classify its accesses as hits.
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(8));
  isa::Cfg cfg(prog);
  const auto cls = classifyDataAccesses(cfg, CacheGeometry{4, 8, 4},
                                        syntacticOracle(prog));
  EXPECT_GT(cls.count(AccessClass::AlwaysHit), 0u);
}

TEST(Classification, SplitBeatsUnifiedOnHeapWorkload) {
  // The split-cache experiment (Table 2, row 2): with pointer-based heap
  // accesses in the loop, the unified cache loses classification of static
  // data (every unknown-address access may touch any set); the split cache
  // does not (heap traffic ages only the heap cache).  One-word lines keep
  // scalars in distinct lines so the effect is not masked by line sharing.
  const auto prog = isa::ast::compileBranchy(isa::workloads::heapMix(8));
  isa::Cfg cfg(prog);
  const auto oracle = syntacticOracle(prog);

  const auto unified =
      classifyDataAccesses(cfg, CacheGeometry{1, 16, 1}, oracle);
  SplitCacheConfig split;
  split.staticGeom = CacheGeometry{1, 16, 1};
  split.stackGeom = CacheGeometry{1, 4, 1};
  split.heapGeom = CacheGeometry{1, 1, 8};
  const auto splitCls =
      classifyDataAccessesSplit(cfg, split, prog.layout, oracle);

  EXPECT_GT(splitCls.classifiedFraction(), unified.classifiedFraction());
}

TEST(Classification, DynamicFractionWeighting) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(8));
  isa::Cfg cfg(prog);
  const auto cls = classifyDataAccesses(cfg, CacheGeometry{4, 8, 4},
                                        syntacticOracle(prog));
  auto run = isa::FunctionalCore::run(prog, isa::Input{});
  const double dyn = cls.dynamicClassifiedFraction(run.trace);
  EXPECT_GE(dyn, 0.0);
  EXPECT_LE(dyn, 1.0);
}

TEST(Classification, InstrFetchLoopBodyHitsAfterFirstIteration) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(8));
  isa::Cfg cfg(prog);
  const auto cls = classifyInstrFetches(cfg, CacheGeometry{4, 16, 2});
  // Some fetches (loop body revisits) are classifiable as hits.
  EXPECT_GT(cls.count(AccessClass::AlwaysHit), 0u);
  // And the classification covers every instruction.
  EXPECT_EQ(cls.classOf.size(), prog.size());
}

TEST(Oracle, SyntacticKinds) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::heapMix(4));
  const auto oracle = syntacticOracle(prog);
  bool sawExact = false, sawUnknownHeap = false, sawRange = false;
  for (std::size_t pc = 0; pc < prog.size(); ++pc) {
    const auto info = oracle(static_cast<std::int32_t>(pc));
    switch (info.kind) {
      case AddrKind::Exact: sawExact = true; break;
      case AddrKind::UnknownHeap: sawUnknownHeap = true; break;
      case AddrKind::Range: sawRange = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(sawExact);
  EXPECT_TRUE(sawUnknownHeap);
  EXPECT_TRUE(sawRange);
}

}  // namespace
}  // namespace pred::cache
