// composition_test.cpp — Compositional predictability (the paper's
// Section 5 future work): exactness for additive architectures, the
// mediant bounds, and the failure of additivity on the domino pipeline.

#include <gtest/gtest.h>

#include <random>

#include "analysis/exhaustive.h"
#include "core/composition.h"
#include "core/definitions.h"
#include "isa/ast.h"
#include "isa/exec.h"
#include "isa/workloads.h"
#include "pipeline/domino_program.h"
#include "pipeline/inorder.h"
#include "pipeline/memory_iface.h"

namespace pred::core {
namespace {

TEST(Composition, SingleComponentIsItself) {
  const std::vector<ComponentRange> cs{{"cache", 10, 40}};
  EXPECT_DOUBLE_EQ(composedPredictability(cs), 0.25);
}

TEST(Composition, PerfectComponentsComposePerfectly) {
  const std::vector<ComponentRange> cs{{"a", 10, 10}, {"b", 5, 5}};
  EXPECT_DOUBLE_EQ(composedPredictability(cs), 1.0);
}

TEST(Composition, AddingAPerfectComponentImproves) {
  // A state-invariant component dilutes the variable one: predictability
  // rises (the constant part dominates the quotient).
  const std::vector<ComponentRange> variable{{"cache", 10, 40}};
  const std::vector<ComponentRange> diluted{{"cache", 10, 40},
                                            {"core", 100, 100}};
  EXPECT_GT(composedPredictability(diluted),
            composedPredictability(variable));
}

TEST(Composition, MediantBoundsHoldOnRandomComponents) {
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<Cycles> lo(1, 100);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<ComponentRange> cs;
    const int n = 1 + static_cast<int>(rng() % 5);
    for (int k = 0; k < n; ++k) {
      const Cycles a = lo(rng);
      const Cycles b = a + (rng() % 100);
      cs.push_back(ComponentRange{"c" + std::to_string(k), a, b});
    }
    const auto bounds = composeWithBounds(cs);
    EXPECT_TRUE(bounds.consistent())
        << "composed " << bounds.composed << " not in [" << bounds.lower
        << ", " << bounds.upper << "]";
  }
}

TEST(Composition, RejectsInvertedRange) {
  EXPECT_THROW(composedPredictability({{"bad", 5, 3}}), std::runtime_error);
}

TEST(Composition, RejectsAllZero) {
  EXPECT_THROW(composedPredictability({{"a", 0, 0}}), std::runtime_error);
}

// The headline theorem, verified against the executable system: for the
// ADDITIVE in-order pipeline, the system SIPr derived from per-component
// ranges equals the exhaustively measured SIPr.
TEST(Composition, ExactForAdditiveInOrderPipeline) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(12));
  const auto trace = isa::FunctionalCore::run(prog, isa::Input{}).trace;

  const cache::CacheGeometry dGeom{4, 8, 2};
  const cache::CacheGeometry iGeom{4, 8, 2};
  const cache::CacheTiming dTiming{1, 10};
  const cache::CacheTiming iTiming{0, 6};

  // Exhaustive system-level SIPr over paired (dcache, icache) states.
  pipeline::InOrderConfig cfg;
  const auto setup = analysis::exhaustiveInOrderWithICache(
      prog, {isa::Input{}}, dGeom, iGeom, cache::Policy::LRU, dTiming,
      iTiming, 10, 5, cfg);
  const auto systemSipr = stateInducedPredictability(setup.matrix);

  // Component ranges: replay the SAME trace through each component alone.
  Cycles computeCost = 0;
  {
    pipeline::FixedLatencyMemory zero(0);
    pipeline::InOrderPipeline pipe(cfg, &zero);
    computeCost = pipe.run(trace);  // core-only time (mem latency 0)
  }
  Cycles dLo = ~Cycles{0}, dHi = 0, iLo = ~Cycles{0}, iHi = 0;
  for (const auto& st : setup.states) {
    cache::SetAssocCache dc = st.cache;
    Cycles dCost = 0;
    for (const auto& rec : trace) {
      if (rec.memWordAddr >= 0) dCost += dc.access(rec.memWordAddr).latency;
    }
    dLo = std::min(dLo, dCost);
    dHi = std::max(dHi, dCost);
    cache::SetAssocCache ic = *st.icache;
    Cycles iCost = 0;
    for (const auto& rec : trace) iCost += ic.access(rec.pc).latency;
    iLo = std::min(iLo, iCost);
    iHi = std::max(iHi, iCost);
  }
  const std::vector<ComponentRange> components{
      {"core", computeCost, computeCost},
      {"dcache", dLo, dHi},
      {"icache", iLo, iHi},
  };
  const double composed = composedPredictability(components);
  EXPECT_NEAR(composed, systemSipr.value, 1e-12)
      << "additive decomposition must be exact";
  const auto bounds = composeWithBounds(components);
  EXPECT_TRUE(bounds.consistent());
}

// Non-additivity of the out-of-order pipeline: no constant per-repetition
// component decomposition can reproduce two diverging linear regimes.
TEST(Composition, DominoPipelineIsNotAdditive) {
  // If timing were additive in (initial state, program), the difference
  // T(q2, p_n) - T(q1, p_n) would be a constant independent of n (the
  // state components' contribution).  It grows linearly instead.
  const auto d1 = pipeline::dominoTime(2, pipeline::dominoStateQ2()) -
                  pipeline::dominoTime(2, pipeline::dominoStateQ1());
  const auto d2 = pipeline::dominoTime(20, pipeline::dominoStateQ2()) -
                  pipeline::dominoTime(20, pipeline::dominoStateQ1());
  EXPECT_GT(d2, d1);
}

}  // namespace
}  // namespace pred::core
