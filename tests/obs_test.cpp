// obs_test.cpp — The observability layer's gate (src/obs/): the
// MetricsRegistry substrate (get-or-create, stable addresses, lock-free
// concurrent sums), the RunReport wire format (exact round-trips, strict
// parse errors, fleet merges), the per-run delta semantics the study layer
// attaches to Findings, and the determinism contract: everything a
// normalized() report keeps is byte-stable run over run.  The engine
// integration checks pin the unified counters to the legacy accessor shims
// (matrixBuilds()/gridWalks()) so the migration cannot drift.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/engine.h"
#include "exp/platform.h"
#include "exp/shard.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/span.h"
#include "study/query.h"
#include "study/workloads.h"

namespace pred {
namespace {

// ------------------------------------------------------------ registry

TEST(MetricsRegistry, GetOrCreateReturnsStableAddresses) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("engine.cells");
  obs::Counter& b = reg.counter("engine.cells");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  obs::PhaseAccum& p = reg.phase("resolve");
  obs::PhaseAccum& q = reg.phase("resolve");
  EXPECT_EQ(&p, &q);
  // Distinct names are distinct metrics, even across kinds.
  EXPECT_NE(&reg.counter("resolve"), static_cast<void*>(&p));
}

TEST(MetricsRegistry, RejectsWhitespaceNames) {
  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.counter(""), std::invalid_argument);
  EXPECT_THROW(reg.counter("has space"), std::invalid_argument);
  EXPECT_THROW(reg.phase("tab\tname"), std::invalid_argument);
  EXPECT_THROW(reg.phase("line\nname"), std::invalid_argument);
}

TEST(MetricsRegistry, ConcurrentAddsSumExactly) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("c");
  obs::PhaseAccum& p = reg.phase("p");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int k = 0; k < kPerThread; ++k) {
        c.add();
        p.record(2);
      }
    });
  }
  for (auto& t : ts) t.join();  // the join publishes the relaxed writes
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(p.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(p.totalNs(),
            static_cast<std::uint64_t>(2 * kThreads * kPerThread));
  EXPECT_EQ(p.maxNs(), 2u);
}

TEST(MetricsRegistry, SnapshotAndReset) {
  obs::MetricsRegistry reg;
  reg.counter("a").add(5);
  reg.phase("walk").record(7);
  const auto counters = reg.counterValues();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters.at("a"), 5u);
  const auto phases = reg.phaseValues();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases.at("walk").count, 1u);
  EXPECT_EQ(phases.at("walk").totalNs, 7u);
  EXPECT_EQ(phases.at("walk").maxNs, 7u);

  reg.reset();
  EXPECT_EQ(reg.counter("a").value(), 0u);  // entry survives, value zeroed
  EXPECT_EQ(reg.phaseValues().at("walk").count, 0u);
}

TEST(PhaseAccum, MaxTracksLargestSpan) {
  obs::PhaseAccum p;
  p.record(5);
  p.record(50);
  p.record(20);
  EXPECT_EQ(p.count(), 3u);
  EXPECT_EQ(p.totalNs(), 75u);
  EXPECT_EQ(p.maxNs(), 50u);
}

TEST(WorkerUtil, RecordsByDenseIdAndDropsOutOfRange) {
  obs::WorkerUtil util(2);
  EXPECT_EQ(util.workers(), 2u);
  util.record(0, 100, 3);
  util.record(1, 40, 1);
  util.record(1, 60, 2);
  util.record(7, 999, 9);   // wider caller-side pool: dropped, not UB
  util.record(-1, 999, 9);  // never recorded
  EXPECT_EQ(util.busyNs(0), 100u);
  EXPECT_EQ(util.items(0), 3u);
  EXPECT_EQ(util.participations(0), 1u);
  EXPECT_EQ(util.busyNs(1), 100u);
  EXPECT_EQ(util.items(1), 3u);
  EXPECT_EQ(util.participations(1), 2u);
}

TEST(Span, RecordsIntoAccumAndDisarmsOnNull) {
  obs::PhaseAccum p;
  { obs::Span s(&p); }
  { obs::Span s(nullptr); }  // disarmed: must not crash or record
  if (obs::compiledIn()) {
    EXPECT_EQ(p.count(), 1u);
  } else {
    EXPECT_EQ(p.count(), 0u);
  }
}

// ------------------------------------------------------ report wire format

obs::RunReport sampleReport() {
  obs::RunReport r;
  r.platform = "inorder-lru";
  r.workload = "bubblesort-8";
  r.wallNs = 123456789;
  r.counters = {{"engine.cells", 4096}, {"trace_store.hits", 7}};
  r.phases["resolve"] = obs::PhaseStat{4, 2000, 900};
  r.phases["replay.packed"] = obs::PhaseStat{4, 9000, 4000};
  r.workers = {obs::WorkerStat{5000, 100, 2}, obs::WorkerStat{4000, 28, 1}};
  r.shards = {obs::ShardStat{"q[0,4)xi[0,8)", 800, 32, 6, 2},
              obs::ShardStat{"q[4,8)xi[0,8)", 1200, 32, 8, 0}};
  return r;
}

TEST(RunReport, SerializeRoundTripsExactly) {
  const obs::RunReport r = sampleReport();
  const std::string wire = r.serialize();
  const obs::RunReport back = obs::RunReport::deserialize(wire);
  EXPECT_EQ(back.serialize(), wire);
  EXPECT_EQ(back.platform, "inorder-lru");
  EXPECT_EQ(back.workload, "bubblesort-8");
  EXPECT_EQ(back.wallNs, 123456789u);
  EXPECT_EQ(back.counter("engine.cells"), 4096u);
  EXPECT_EQ(back.counter("not.there"), 0u);
  ASSERT_EQ(back.phases.size(), 2u);
  EXPECT_EQ(back.phases.at("replay.packed").maxNs, 4000u);
  ASSERT_EQ(back.workers.size(), 2u);
  EXPECT_EQ(back.workers[1].items, 28u);
  ASSERT_EQ(back.shards.size(), 2u);
  EXPECT_EQ(back.shards[1].label, "q[4,8)xi[0,8)");
  EXPECT_DOUBLE_EQ(back.shards[0].hitRate(), 0.75);
  EXPECT_DOUBLE_EQ(obs::ShardStat{}.hitRate(), 0.0);  // no lookups -> 0
}

TEST(RunReport, EmptyReportRoundTrips) {
  const obs::RunReport r;  // all defaults; labels are "-"
  const obs::RunReport back = obs::RunReport::deserialize(r.serialize());
  EXPECT_EQ(back.serialize(), r.serialize());
  EXPECT_TRUE(back.counters.empty());
  EXPECT_TRUE(back.shards.empty());
}

TEST(RunReport, DeserializeRejectsMalformedInput) {
  const std::string good = sampleReport().serialize();
  // Strictness sweep: every mutation must throw, never UB.
  const std::vector<std::string> bad = {
      "",
      "pred-shard v1\nend\n",          // wrong header
      "pred-report v2\n",              // wrong version
      "pred-report v1\nplatform\n",    // truncated mid-field
      "pred-report v1\nworkload w\n",  // fields out of order
      good + "trailing",               // trailing content after end
      "pred-report v1\nplatform p\nworkload w\nwall-ns x\n",  // bad number
      "pred-report v1\nplatform p\nworkload w\nwall-ns 1\ncounters 2\n"
      "a 1\na 2\nphases 0\nworkers 0\nshards 0\nend\n",  // duplicate counter
      "pred-report v1\nplatform p\nworkload w\nwall-ns 1\ncounters 0\n"
      "phases 1\nx 1 2\nworkers 0\nshards 0\nend\n",  // short phase row
  };
  for (const auto& text : bad) {
    EXPECT_THROW(obs::RunReport::deserialize(text), std::invalid_argument)
        << "accepted: " << text;
  }
}

TEST(RunReport, SerializeRejectsWhitespaceLabels) {
  obs::RunReport r;
  r.platform = "two words";
  EXPECT_THROW(r.serialize(), std::invalid_argument);
  r.platform = "ok";
  r.shards.push_back(obs::ShardStat{"bad label", 0, 0, 0, 0});
  EXPECT_THROW(r.serialize(), std::invalid_argument);
}

TEST(RunReport, JsonAndTextRenderTheFleetView) {
  const obs::RunReport r = sampleReport();
  const std::string json = r.json();
  EXPECT_NE(json.find("\"engine.cells\": 4096"), std::string::npos);
  EXPECT_NE(json.find("\"hit_rate\": 0.75"), std::string::npos);
  const std::string text = r.text();
  EXPECT_NE(text.find("bubblesort-8 on inorder-lru"), std::string::npos);
  // Slowest-shard attribution and wall skew (1200 / 800 = 1.50x).
  EXPECT_NE(text.find("slowest q[4,8)xi[0,8)"), std::string::npos);
  EXPECT_NE(text.find("wall skew 1.50x"), std::string::npos);
}

// ----------------------------------------------------------- delta / norm

TEST(RunReport, DeltaSinceSubtractsAndDropsIdlePhases) {
  obs::RunReport before;
  before.counters = {{"a", 10}, {"b", 5}};
  before.phases["walk"] = obs::PhaseStat{2, 100, 80};
  before.phases["merge"] = obs::PhaseStat{1, 50, 50};
  before.workers = {obs::WorkerStat{100, 10, 1}};

  obs::RunReport after = before;
  after.counters["a"] = 17;
  after.counters["c"] = 3;
  after.phases["walk"] = obs::PhaseStat{5, 160, 90};
  after.workers[0] = obs::WorkerStat{150, 14, 2};

  const obs::RunReport d = after.deltaSince(before);
  EXPECT_EQ(d.counter("a"), 7u);
  EXPECT_EQ(d.counter("b"), 0u);
  EXPECT_EQ(d.counter("c"), 3u);
  ASSERT_EQ(d.phases.count("walk"), 1u);
  EXPECT_EQ(d.phases.at("walk").count, 3u);
  EXPECT_EQ(d.phases.at("walk").totalNs, 60u);
  EXPECT_EQ(d.phases.at("walk").maxNs, 90u);  // max keeps the after value
  // merge did not advance during the run -> dropped from the delta.
  EXPECT_EQ(d.phases.count("merge"), 0u);
  ASSERT_EQ(d.workers.size(), 1u);
  EXPECT_EQ(d.workers[0].busyNs, 50u);
  EXPECT_EQ(d.workers[0].items, 4u);
  EXPECT_EQ(d.workers[0].participations, 1u);
}

TEST(RunReport, DeltaSinceSaturatesInsteadOfWrapping) {
  obs::RunReport before;
  before.counters = {{"a", 100}};
  obs::RunReport after;
  after.counters = {{"a", 40}};  // e.g. a reset between snapshots
  EXPECT_EQ(after.deltaSince(before).counter("a"), 0u);
}

TEST(RunReport, NormalizedZeroesEveryNondeterministicField) {
  const obs::RunReport n = sampleReport().normalized();
  EXPECT_EQ(n.wallNs, 0u);
  for (const auto& [name, p] : n.phases) {
    EXPECT_GT(p.count, 0u) << name;  // span counts are deterministic: kept
    EXPECT_EQ(p.totalNs, 0u) << name;
    EXPECT_EQ(p.maxNs, 0u) << name;
  }
  ASSERT_EQ(n.workers.size(), 2u);  // worker COUNT is stable
  for (const auto& w : n.workers) {
    EXPECT_EQ(w.busyNs, 0u);
    EXPECT_EQ(w.items, 0u);
    EXPECT_EQ(w.participations, 0u);
  }
  ASSERT_EQ(n.shards.size(), 2u);
  for (const auto& s : n.shards) EXPECT_EQ(s.wallNs, 0u);
  EXPECT_EQ(n.shards[0].cells, 32u);  // structure survives
  EXPECT_EQ(n.counter("engine.cells"), 4096u);
}

// ------------------------------------------------------------ fleet merge

TEST(MergeFleet, FoldsKShardReportsIntoTheFleetView) {
  std::vector<obs::RunReport> parts;
  for (int k = 0; k < 3; ++k) {
    obs::RunReport r;
    r.platform = "inorder-lru";
    r.workload = "bubblesort-8";
    r.wallNs = 1000 * (k + 1);
    r.counters = {{"engine.cells", 64}, {"trace_store.misses", 8}};
    r.phases["replay.packed"] =
        obs::PhaseStat{1, 500u * (k + 1), 500u * (k + 1)};
    r.workers = {obs::WorkerStat{400, 16, 1}};
    if (k == 2) r.workers.push_back(obs::WorkerStat{100, 4, 1});
    r.shards = {obs::ShardStat{"s" + std::to_string(k),
                               1000u * (k + 1), 64, 0, 8}};
    parts.push_back(std::move(r));
  }
  const obs::RunReport fleet = obs::mergeFleet(parts);
  EXPECT_EQ(fleet.platform, "inorder-lru");
  EXPECT_EQ(fleet.wallNs, 3000u);  // critical path: slowest shard
  EXPECT_EQ(fleet.counter("engine.cells"), 192u);
  EXPECT_EQ(fleet.phases.at("replay.packed").count, 3u);
  EXPECT_EQ(fleet.phases.at("replay.packed").totalNs, 3000u);
  EXPECT_EQ(fleet.phases.at("replay.packed").maxNs, 1500u);
  ASSERT_EQ(fleet.workers.size(), 2u);  // padded to the widest part
  EXPECT_EQ(fleet.workers[0].busyNs, 1200u);
  EXPECT_EQ(fleet.workers[1].busyNs, 100u);
  ASSERT_EQ(fleet.shards.size(), 3u);
  // Round-trips as a report itself (merge output crosses processes too).
  EXPECT_EQ(obs::RunReport::deserialize(fleet.serialize()).serialize(),
            fleet.serialize());
}

TEST(MergeFleet, MixedContextBecomesUnbound) {
  obs::RunReport a, b;
  a.platform = b.platform = "p";
  a.workload = "w1";
  b.workload = "w2";
  const auto fleet = obs::mergeFleet({a, b});
  EXPECT_EQ(fleet.platform, "p");
  EXPECT_EQ(fleet.workload, "-");
}

TEST(MergeFleet, EmptyInputThrows) {
  EXPECT_THROW(obs::mergeFleet({}), std::invalid_argument);
}

// ------------------------------------------------------ engine integration

TEST(EngineReport, CountersMatchTheLegacyAccessorShims) {
  const auto w = study::WorkloadRegistry::instance().make("bubblesort-8");
  exp::PlatformOptions opts;
  opts.numStates = 8;
  const auto model =
      exp::PlatformRegistry::instance().make("inorder-lru", w.program, opts);
  exp::EngineConfig cfg;
  cfg.threads = 1;
  exp::ExperimentEngine engine(cfg);

  const auto acc = engine.reduceCells(*model, w.program, w.inputs);
  (void)acc;
  engine.computeMatrix(*model, w.program, w.inputs);

  const obs::RunReport r = engine.report();
  EXPECT_EQ(r.counter("engine.matrix_builds"), engine.matrixBuilds());
  EXPECT_EQ(r.counter("engine.grid_walks"), engine.gridWalks());
  EXPECT_EQ(engine.matrixBuilds(), 1u);
  EXPECT_EQ(engine.gridWalks(), 2u);
  // The cells counter saw every cell of both walks.
  const std::uint64_t cells = static_cast<std::uint64_t>(
      model->numStates() * w.inputs.size());
  EXPECT_EQ(r.counter("engine.cells"), 2 * cells);
  EXPECT_GT(r.counter("engine.tiles"), 0u);
  // Trace-store counters ride along under the same namespace scheme.
  EXPECT_EQ(r.counter("trace_store.misses"), engine.traceStore().misses());
  EXPECT_EQ(r.counter("trace_store.entries"),
            static_cast<std::uint64_t>(engine.traceStore().size()));
  if (obs::compiledIn()) {
    EXPECT_GT(r.phases.at("replay.packed").count, 0u);
    EXPECT_GT(r.phases.at("resolve").count, 0u);
    ASSERT_EQ(r.workers.size(), 1u);  // threads=1: exactly worker 0
    EXPECT_GT(r.workers[0].items, 0u);
    EXPECT_GT(r.workers[0].participations, 0u);
  }
}

TEST(EngineReport, FindingCarriesThePerRunDelta) {
  exp::EngineConfig cfg;
  cfg.threads = 1;
  exp::ExperimentEngine engine(cfg);
  const auto query = study::Query()
                         .workload("bubblesort-8")
                         .platform("inorder-lru")
                         .mode(study::Exhaustive{});
  const auto f1 = query.run(engine);
  const auto f2 = query.run(engine);
  ASSERT_TRUE(f1.report.has_value());
  ASSERT_TRUE(f2.report.has_value());
  EXPECT_EQ(f1.report->platform, "inorder-lru");
  EXPECT_EQ(f1.report->workload, "bubblesort-8");
  // Deltas, not cumulative totals: each run sees its own single grid walk,
  // and the second run resolves no new traces (the store is warm).
  EXPECT_EQ(f1.report->counter("engine.grid_walks"), 1u);
  EXPECT_EQ(f2.report->counter("engine.grid_walks"), 1u);
  EXPECT_GT(f1.report->counter("trace_store.misses"), 0u);
  EXPECT_EQ(f2.report->counter("trace_store.misses"), 0u);
  EXPECT_EQ(f1.report->counter("engine.cells"),
            f2.report->counter("engine.cells"));
}

TEST(EngineReport, NormalizedReportIsByteStableAcrossIdenticalRuns) {
  const auto runOnce = [] {
    exp::EngineConfig cfg;
    cfg.threads = 1;  // single-threaded: even hit/miss splits are exact
    exp::ExperimentEngine engine(cfg);
    const auto f = study::Query()
                       .workload("bubblesort-8")
                       .platform("inorder-lru")
                       .mode(study::Exhaustive{})
                       .run(engine);
    return f.report->normalized().serialize();
  };
  EXPECT_EQ(runOnce(), runOnce());
}

TEST(EngineReport, ShardedRunAttachesPerShardStats) {
  exp::EngineConfig cfg;
  cfg.threads = 1;
  exp::ExperimentEngine engine(cfg);
  const auto query = study::Query()
                         .workload("bubblesort-8")
                         .platform("inorder-lru")
                         .mode(study::Exhaustive{});
  const auto f = query.runSharded(engine, 3);
  ASSERT_TRUE(f.report.has_value());
  ASSERT_EQ(f.report->shards.size(), 3u);
  std::uint64_t cells = 0;
  for (const auto& s : f.report->shards) cells += s.cells;
  EXPECT_EQ(cells, static_cast<std::uint64_t>(f.numStates * f.numInputs));
  // Its wire form is a valid report (labels are single tokens).
  EXPECT_NO_THROW(obs::RunReport::deserialize(f.report->serialize()));
}

TEST(EngineReport, EvaluateShardFillsTheSelfReport) {
  const auto w = study::WorkloadRegistry::instance().make("bubblesort-8");
  exp::ShardSpec spec;
  spec.platform = "inorder-lru";
  spec.workload = "bubblesort-8";
  spec.options.numStates = 8;
  spec.qBegin = 2;
  spec.qEnd = 6;
  spec.iBegin = 0;
  spec.iEnd = w.inputs.size();
  spec.engine.threads = 1;

  obs::RunReport report;
  const auto acc = exp::evaluateShard(spec, w.program, w.inputs,
                                      exp::PlatformRegistry::instance(),
                                      &report);
  (void)acc;
  EXPECT_EQ(report.platform, "inorder-lru");
  EXPECT_EQ(report.workload, "bubblesort-8");
  ASSERT_EQ(report.shards.size(), 1u);
  const auto& self = report.shards[0];
  EXPECT_EQ(self.label, exp::shardLabel(spec));
  EXPECT_EQ(self.cells, 4u * w.inputs.size());
  EXPECT_EQ(self.traceMisses, report.counter("trace_store.misses"));
  EXPECT_EQ(report.counter("engine.cells"), self.cells);

  // The accumulator is bit-identical with and without telemetry.
  const auto plain = exp::evaluateShard(spec, w.program, w.inputs);
  EXPECT_EQ(plain.serialize(), acc.serialize());
}

}  // namespace
}  // namespace pred
