// isa_test.cpp — Functional semantics of the mini ISA: opcodes, builder,
// machine state, input handling, traces.

#include <gtest/gtest.h>

#include "isa/builder.h"
#include "isa/exec.h"
#include "isa/machine.h"
#include "isa/program.h"
#include "isa/workloads.h"

namespace pred::isa {
namespace {

RunResult runProgram(const Program& p, const Input& in = Input{}) {
  auto r = FunctionalCore::run(p, in);
  EXPECT_TRUE(r.completed);
  return r;
}

TEST(Instr, LatencyClasses) {
  EXPECT_EQ(latencyClass(Op::ADD), LatencyClass::Single);
  EXPECT_EQ(latencyClass(Op::MUL), LatencyClass::Multiply);
  EXPECT_EQ(latencyClass(Op::DIV), LatencyClass::Divide);
  EXPECT_EQ(latencyClass(Op::LD), LatencyClass::Memory);
  EXPECT_EQ(latencyClass(Op::ST), LatencyClass::Memory);
  EXPECT_EQ(latencyClass(Op::BEQ), LatencyClass::Control);
  EXPECT_EQ(latencyClass(Op::JMP), LatencyClass::Control);
  EXPECT_EQ(latencyClass(Op::NOP), LatencyClass::None);
  EXPECT_EQ(latencyClass(Op::DEADLINE), LatencyClass::None);
}

TEST(Instr, ControlFlowPredicates) {
  EXPECT_TRUE(isConditionalBranch(Op::BEQ));
  EXPECT_TRUE(isConditionalBranch(Op::BGE));
  EXPECT_FALSE(isConditionalBranch(Op::JMP));
  EXPECT_TRUE(isControlFlow(Op::JMP));
  EXPECT_TRUE(isControlFlow(Op::CALL));
  EXPECT_TRUE(isControlFlow(Op::RET));
  EXPECT_FALSE(isControlFlow(Op::ADD));
  EXPECT_TRUE(isMemAccess(Op::LD));
  EXPECT_FALSE(isMemAccess(Op::MUL));
}

TEST(Instr, Disassembly) {
  Instr add{Op::ADD, 1, 2, 3, 0};
  EXPECT_EQ(toString(add), "add r1, r2, r3");
  Instr li{Op::LI, 5, 0, 0, 42};
  EXPECT_EQ(toString(li), "li r5, 42");
  Instr beq{Op::BEQ, 0, 1, 2, 7};
  EXPECT_EQ(toString(beq), "beq r1, r2, @7");
}

TEST(Exec, ArithmeticOps) {
  ProgramBuilder b;
  b.li(1, 6).li(2, 7);
  b.add(3, 1, 2);   // 13
  b.sub(4, 1, 2);   // -1
  b.mul(5, 1, 2);   // 42
  b.and_(6, 1, 2);  // 6
  b.or_(7, 1, 2);   // 7
  b.xor_(8, 1, 2);  // 1
  b.slt(9, 1, 2);   // 1
  b.halt();
  auto r = runProgram(b.build());
  EXPECT_EQ(r.finalState.reg(3), 13);
  EXPECT_EQ(r.finalState.reg(4), -1);
  EXPECT_EQ(r.finalState.reg(5), 42);
  EXPECT_EQ(r.finalState.reg(6), 6);
  EXPECT_EQ(r.finalState.reg(7), 7);
  EXPECT_EQ(r.finalState.reg(8), 1);
  EXPECT_EQ(r.finalState.reg(9), 1);
}

TEST(Exec, ShiftsAndImmediates) {
  ProgramBuilder b;
  b.li(1, 3).li(2, 2);
  b.shl(3, 1, 2);       // 12
  b.li(4, -16).shr(5, 4, 2);  // -4 (arithmetic)
  b.addi(6, 1, 10);     // 13
  b.mov(7, 6);
  b.halt();
  auto r = runProgram(b.build());
  EXPECT_EQ(r.finalState.reg(3), 12);
  EXPECT_EQ(r.finalState.reg(5), -4);
  EXPECT_EQ(r.finalState.reg(6), 13);
  EXPECT_EQ(r.finalState.reg(7), 13);
}

TEST(Exec, DivSemanticsAndLatency) {
  ProgramBuilder b;
  b.li(1, 42).li(2, 5).div(3, 1, 2);
  b.li(4, 0).div(5, 1, 4);  // div by zero -> 0
  b.halt();
  auto r = runProgram(b.build());
  EXPECT_EQ(r.finalState.reg(3), 8);
  EXPECT_EQ(r.finalState.reg(5), 0);
  // Data-dependent latency recorded in the trace.
  EXPECT_EQ(r.trace[2].extraLatency, divLatency(42));
  EXPECT_GE(divLatency(1), 3);
  EXPECT_LE(divLatency(INT64_MAX), maxDivLatency());
  EXPECT_LT(divLatency(1), divLatency(INT64_MAX));
}

TEST(Exec, RegisterZeroIsHardwired) {
  ProgramBuilder b;
  b.li(0, 99).addi(1, 0, 5).halt();
  auto r = runProgram(b.build());
  EXPECT_EQ(r.finalState.reg(0), 0);
  EXPECT_EQ(r.finalState.reg(1), 5);
}

TEST(Exec, LoadStore) {
  ProgramBuilder b;
  b.li(1, 123).li(2, 10);
  b.st(1, 2, 5);   // mem[15] = 123
  b.ld(3, 2, 5);   // r3 = mem[15]
  b.halt();
  auto r = runProgram(b.build());
  EXPECT_EQ(r.finalState.mem[15], 123);
  EXPECT_EQ(r.finalState.reg(3), 123);
  EXPECT_EQ(r.trace[2].memWordAddr, 15);
  EXPECT_EQ(r.trace[3].memWordAddr, 15);
}

TEST(Exec, AddressWrapping) {
  ProgramBuilder b;
  b.li(1, -1).st(1, 1, 0).halt();  // address -1 wraps to memWords-1
  auto r = runProgram(b.build());
  EXPECT_EQ(r.finalState.mem.back(), -1);
}

TEST(Exec, BranchesAllVariants) {
  // Count down from 3 with BNE.
  ProgramBuilder b;
  b.li(1, 3);
  b.label("loop");
  b.addi(1, 1, -1);
  b.bne(1, 0, "loop").bound(3);
  b.halt();
  auto r = runProgram(b.build());
  EXPECT_EQ(r.finalState.reg(1), 0);
  TraceStats s = computeStats(r.trace);
  EXPECT_EQ(s.condBranches, 3u);
  EXPECT_EQ(s.takenBranches, 2u);
}

TEST(Exec, BltBgeBeq) {
  ProgramBuilder b;
  b.li(1, 2).li(2, 5);
  b.blt(1, 2, "a");
  b.li(10, 111);  // skipped
  b.label("a");
  b.bge(2, 1, "c");
  b.li(11, 222);  // skipped
  b.label("c");
  b.beq(1, 1, "d");
  b.li(12, 333);  // skipped
  b.label("d");
  b.halt();
  auto r = runProgram(b.build());
  EXPECT_EQ(r.finalState.reg(10), 0);
  EXPECT_EQ(r.finalState.reg(11), 0);
  EXPECT_EQ(r.finalState.reg(12), 0);
}

TEST(Exec, CallRetNesting) {
  ProgramBuilder b;
  b.call("f").call("g").halt();
  b.beginFunction("f");
  b.addi(1, 1, 1);
  b.call("g");
  b.ret();
  b.endFunction();
  b.beginFunction("g");
  b.addi(2, 2, 10);
  b.ret();
  b.endFunction();
  auto r = runProgram(b.build());
  EXPECT_EQ(r.finalState.reg(1), 1);
  EXPECT_EQ(r.finalState.reg(2), 20);  // called twice
  EXPECT_TRUE(r.finalState.callStack.empty());
}

TEST(Exec, CmovSemantics) {
  ProgramBuilder b;
  b.li(1, 1).li(2, 42).li(3, 7);
  b.cmov(4, 1, 2);  // cond true: r4 = 42
  b.cmov(5, 0, 3);  // cond false (r0 == 0): r5 unchanged (0)
  b.halt();
  auto r = runProgram(b.build());
  EXPECT_EQ(r.finalState.reg(4), 42);
  EXPECT_EQ(r.finalState.reg(5), 0);
}

TEST(Exec, StepLimitDetectsNonTermination) {
  ProgramBuilder b;
  b.label("spin").jmp("spin").halt();
  auto r = FunctionalCore::run(b.build(), Input{}, 1000);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.steps, 1000u);
}

TEST(Builder, UnboundLabelThrows) {
  ProgramBuilder b;
  b.jmp("nowhere").halt();
  EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(Builder, DuplicateLabelThrows) {
  ProgramBuilder b;
  b.label("x");
  EXPECT_THROW(b.label("x"), std::runtime_error);
}

TEST(Builder, NestedFunctionThrows) {
  ProgramBuilder b;
  b.beginFunction("f");
  EXPECT_THROW(b.beginFunction("g"), std::runtime_error);
}

TEST(Builder, CallToNonFunctionFailsValidation) {
  ProgramBuilder b;
  b.label("notafunction").nop();
  b.call("notafunction");
  b.halt();
  EXPECT_THROW(b.build(), std::runtime_error);
}

TEST(Builder, UnknownAddressRequiresMemOp) {
  ProgramBuilder b;
  b.nop();
  EXPECT_THROW(b.unknownAddress(), std::runtime_error);
  b.ld(1, 2, 0);
  EXPECT_NO_THROW(b.unknownAddress());
}

TEST(Program, ValidateCatchesBadTarget) {
  Program p;
  p.code = {Instr{Op::JMP, 0, 0, 0, 99}, Instr{Op::HALT, 0, 0, 0, 0}};
  EXPECT_TRUE(p.validate().has_value());
}

TEST(Program, DisassembleListsLoopBound) {
  ProgramBuilder b;
  b.li(1, 0);
  b.label("l");
  b.addi(1, 1, 1);
  b.li(2, 4);
  b.blt(1, 2, "l").bound(4);
  b.halt();
  const auto text = b.build().disassemble();
  EXPECT_NE(text.find("loop bound 4"), std::string::npos);
}

TEST(Machine, InputApplication) {
  MachineState st(128);
  Input in;
  in.regs[3] = 77;
  in.mem[5] = -9;
  st.applyInput(in);
  EXPECT_EQ(st.reg(3), 77);
  EXPECT_EQ(st.mem[5], -9);
  EXPECT_EQ(st.reg(0), 0);
}

TEST(Machine, EnumerateInputsCrossProduct) {
  ProgramBuilder b;
  b.var("x", 10).var("y", 11).halt();
  const auto p = b.build();
  auto inputs = enumerateInputs(p, {{"x", {1, 2, 3}}, {"y", {4, 5}}});
  EXPECT_EQ(inputs.size(), 6u);
  // All distinct.
  for (std::size_t a = 0; a < inputs.size(); ++a) {
    for (std::size_t c = a + 1; c < inputs.size(); ++c) {
      EXPECT_FALSE(inputs[a] == inputs[c]);
    }
  }
}

TEST(Machine, MergeInputsRightWins) {
  Input a = regInput(1, 10);
  Input b2 = regInput(1, 20);
  const Input m = mergeInputs(a, b2);
  EXPECT_EQ(m.regs.at(1), 20);
}

TEST(Workloads, StrideWalkAccessCount) {
  const auto p = workloads::strideWalk(16, 4, 2);
  auto r = runProgram(p);
  TraceStats s = computeStats(r.trace);
  EXPECT_EQ(s.loads, 8u);  // 16/4 per rep x 2 reps
}

TEST(Workloads, RandomWalkDeterministicPerSeed) {
  const auto p1 = workloads::randomWalk(64, 10, 5);
  const auto p2 = workloads::randomWalk(64, 10, 5);
  const auto p3 = workloads::randomWalk(64, 10, 6);
  EXPECT_EQ(p1.code.size(), p2.code.size());
  bool same = true, diff = false;
  for (std::size_t k = 0; k < p1.code.size(); ++k) {
    same = same && p1.code[k].imm == p2.code[k].imm;
    if (k < p3.code.size() && p1.code[k].imm != p3.code[k].imm) diff = true;
  }
  EXPECT_TRUE(same);
  EXPECT_TRUE(diff);
}

TEST(Workloads, RandomArrayInputsRespectRange) {
  const auto p = ast::compileBranchy(workloads::sumLoop(8));
  auto ins = workloads::randomArrayInputs(p, "a", 8, 5, 42, 16);
  ASSERT_EQ(ins.size(), 5u);
  for (const auto& in : ins) {
    EXPECT_EQ(in.mem.size(), 8u);
    for (const auto& [addr, v] : in.mem) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 16);
    }
  }
}

}  // namespace
}  // namespace pred::isa
