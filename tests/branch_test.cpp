// branch_test.cpp — Branch predictors: dynamic table semantics, static
// schemes, the WCET-oriented scheme of Bodin & Puaut, and soundness of the
// static misprediction bound.

#include <gtest/gtest.h>

#include "branch/dynamic.h"
#include "branch/static_schemes.h"
#include "isa/ast.h"
#include "isa/exec.h"
#include "isa/workloads.h"

namespace pred::branch {
namespace {

isa::Trace traceOf(const isa::Program& p, const isa::Input& in = {}) {
  auto r = isa::FunctionalCore::run(p, in);
  EXPECT_TRUE(r.completed);
  return r.trace;
}

TEST(Bimodal, SaturatingCounterLearning) {
  BimodalPredictor p(16, 1);  // weakly not-taken
  EXPECT_FALSE(p.predictTaken(0));
  p.update(0, true);  // counter -> 2
  EXPECT_TRUE(p.predictTaken(0));
  p.update(0, true);  // 3 (saturated)
  p.update(0, true);
  p.update(0, false);  // 2: still predicts taken (hysteresis)
  EXPECT_TRUE(p.predictTaken(0));
  p.update(0, false);  // 1
  EXPECT_FALSE(p.predictTaken(0));
}

TEST(Bimodal, AliasingBetweenBranches) {
  BimodalPredictor p(4, 1);
  // pcs 1 and 5 share entry 1.
  for (int k = 0; k < 3; ++k) p.update(1, true);
  EXPECT_TRUE(p.predictTaken(5));  // polluted by alias — the model's point
}

TEST(Bimodal, InitialStateMatters) {
  BimodalPredictor strongTaken(8, 3);
  BimodalPredictor strongNot(8, 0);
  EXPECT_TRUE(strongTaken.predictTaken(2));
  EXPECT_FALSE(strongNot.predictTaken(2));
}

TEST(OneBit, FlipsOnEachOutcome) {
  OneBitPredictor p(8, false);
  EXPECT_FALSE(p.predictTaken(0));
  p.update(0, true);
  EXPECT_TRUE(p.predictTaken(0));
  p.update(0, false);
  EXPECT_FALSE(p.predictTaken(0));
}

TEST(Gshare, HistoryAffectsIndex) {
  GsharePredictor p(64, 4, 0, 1);
  // Train pattern: alternating outcomes at one pc; gshare can learn it
  // because history disambiguates.
  for (int k = 0; k < 64; ++k) p.update(10, k % 2 == 0);
  std::uint64_t wrong = 0;
  for (int k = 0; k < 32; ++k) {
    const bool actual = k % 2 == 0;
    if (p.predictTaken(10) != actual) ++wrong;
    p.update(10, actual);
  }
  BimodalPredictor b(64, 1);
  for (int k = 0; k < 64; ++k) b.update(10, k % 2 == 0);
  std::uint64_t wrongB = 0;
  for (int k = 0; k < 32; ++k) {
    const bool actual = k % 2 == 0;
    if (b.predictTaken(10) != actual) ++wrongB;
    b.update(10, actual);
  }
  EXPECT_LT(wrong, wrongB);  // history helps on alternating patterns
}

TEST(LocalTwoLevel, LearnsShortPeriodicPattern) {
  LocalTwoLevelPredictor p(8, 4, 1);
  // Period-3 pattern T T N.
  auto pattern = [](int k) { return k % 3 != 2; };
  for (int k = 0; k < 96; ++k) p.update(7, pattern(k));
  std::uint64_t wrong = 0;
  for (int k = 96; k < 126; ++k) {
    if (p.predictTaken(7) != pattern(k)) ++wrong;
    p.update(7, pattern(k));
  }
  EXPECT_LE(wrong, 2u);
}

TEST(Static, PredictorsIgnoreUpdates) {
  auto p = alwaysNotTaken();
  p.update(3, true);
  p.update(3, true);
  EXPECT_FALSE(p.predictTaken(3));
}

TEST(Static, BtfnPredictsBackwardTaken) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(8));
  auto p = btfn(prog);
  for (std::size_t pc = 0; pc < prog.size(); ++pc) {
    const auto& ins = prog.code[pc];
    if (!isa::isConditionalBranch(ins.op)) continue;
    const bool backward = ins.imm <= static_cast<std::int32_t>(pc);
    EXPECT_EQ(p.predictTaken(static_cast<std::int32_t>(pc)), backward);
  }
}

TEST(Static, ProfileBasedMatchesMajority) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::linearSearch(8));
  isa::Input in = isa::varInput(prog, "key", 99);  // never found: loop runs
  const auto base = prog.variables.at("a");
  for (int i = 0; i < 8; ++i) in.mem[base + i] = i;
  const auto training = traceOf(prog, in);
  auto p = profileBased(prog, training);
  // Mispredictions of the profile scheme on its own training trace are <=
  // those of the anti-profile (inverted) scheme.
  std::map<std::int32_t, bool> inverted;
  for (const auto& [pc, dir] : p.directions()) inverted[pc] = !dir;
  StaticPredictor anti(inverted, "anti");
  auto pCopy = p;
  EXPECT_LE(countMispredictions(training, pCopy),
            countMispredictions(training, anti));
}

TEST(CountMispredictions, ProfileNeverWorseThanNaiveOnTrainingTrace) {
  // Per-branch majority is optimal among static schemes on the training
  // trace, hence <= any fixed scheme there.
  const auto prog = isa::ast::compileBranchy(isa::workloads::bubbleSort(5));
  const auto inputs = isa::workloads::randomArrayInputs(prog, "a", 5, 1, 13, 32);
  const auto trace = traceOf(prog, inputs[0]);
  auto prof = profileBased(prog, trace);
  auto ant = alwaysNotTaken();
  auto at = alwaysTaken(prog);
  const auto mProf = countMispredictions(trace, prof);
  EXPECT_LE(mProf, countMispredictions(trace, ant));
  EXPECT_LE(mProf, countMispredictions(trace, at));
}

TEST(WcetOriented, LatchesPredictedTaken) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(8));
  isa::Cfg cfg(prog);
  auto p = wcetOriented(cfg);
  for (std::size_t pc = 0; pc < prog.size(); ++pc) {
    const auto& ins = prog.code[pc];
    if (isa::isConditionalBranch(ins.op) &&
        ins.imm <= static_cast<std::int32_t>(pc)) {
      EXPECT_TRUE(p.predictTaken(static_cast<std::int32_t>(pc)));
    }
  }
}

TEST(WcetOriented, BoundSoundOnWorkloads) {
  // The static bound must dominate the measured misprediction count for
  // every input tried.
  struct Case {
    isa::ast::AstProgram ast;
    std::string arrayName;
    std::int64_t len;
  };
  const Case cases[] = {
      {isa::workloads::sumLoop(8), "a", 8},
      {isa::workloads::linearSearch(8), "a", 8},
      {isa::workloads::bubbleSort(6), "a", 6},
      {isa::workloads::branchTree(4), "", 0},
  };
  for (const auto& c : cases) {
    const auto prog = isa::ast::compileBranchy(c.ast);
    isa::Cfg cfg(prog);
    auto scheme = wcetOriented(cfg);
    const auto bound = mispredictionBound(cfg, scheme);
    std::vector<isa::Input> inputs{isa::Input{}};
    if (!c.arrayName.empty()) {
      auto more = isa::workloads::randomArrayInputs(prog, c.arrayName, c.len,
                                                    5, 17, 32);
      inputs.insert(inputs.end(), more.begin(), more.end());
    }
    for (const auto& in : inputs) {
      auto p = scheme;  // fresh (stateless anyway)
      const auto measured = countMispredictions(traceOf(prog, in), p);
      EXPECT_LE(measured, bound);
    }
  }
}

TEST(WcetOriented, TighterBoundThanWorstStaticChoice) {
  // The WCET-oriented directions never lose to a naive fixed direction, and
  // strictly beat always-taken on loop-heavy code (whose forward loop-exit
  // tests are overwhelmingly not-taken).
  const auto prog = isa::ast::compileBranchy(isa::workloads::matMul(4));
  isa::Cfg cfg(prog);
  const auto smart = wcetOriented(cfg);
  EXPECT_LE(mispredictionBound(cfg, smart),
            mispredictionBound(cfg, alwaysNotTaken()));
  EXPECT_LT(mispredictionBound(cfg, smart),
            mispredictionBound(cfg, alwaysTaken(prog)));
}

TEST(DynamicVsStatic, InitialStateInducesVariability) {
  // Table 1, row 1's uncertainty source: with a dynamic predictor the
  // misprediction count depends on the initial table state; with a static
  // scheme it does not.
  const auto prog = isa::ast::compileBranchy(isa::workloads::branchTree(4));
  std::vector<isa::Input> inputs;
  for (std::int64_t x0 : {0, 10}) {
    inputs.push_back(isa::varInput(prog, "x0", x0));
  }
  for (const auto& in : inputs) {
    const auto trace = traceOf(prog, in);
    std::set<std::uint64_t> dynCounts, statCounts;
    for (int init = 0; init <= 3; ++init) {
      BimodalPredictor dyn(16, init);
      dynCounts.insert(countMispredictions(trace, dyn));
      auto stat = btfn(prog);
      statCounts.insert(countMispredictions(trace, stat));
    }
    EXPECT_EQ(statCounts.size(), 1u);   // static: invariant
    EXPECT_GE(dynCounts.size(), 2u);    // dynamic: state-dependent
  }
}

TEST(Clone, PreservesState) {
  BimodalPredictor p(8, 1);
  p.update(0, true);
  p.update(0, true);
  auto q = p.clone();
  EXPECT_TRUE(q->predictTaken(0));
  q->update(0, false);
  q->update(0, false);
  EXPECT_FALSE(q->predictTaken(0));
  EXPECT_TRUE(p.predictTaken(0));  // original untouched
}

}  // namespace
}  // namespace pred::branch
