// dram_test.cpp — DRAM device timing, the three controllers of Table 2
// row 4, and the refresh schemes of row 5.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/measures.h"
#include "dram/controllers.h"
#include "dram/device.h"
#include "dram/refresh.h"

namespace pred::dram {
namespace {

DramDevice dev() { return DramDevice(DramGeometry{}, DramTiming{}); }

TEST(Device, OpenPageRowHitVsConflict) {
  auto d = dev();
  const auto t = d.timing();
  // First access: activate + CAS.
  EXPECT_EQ(d.accessOpenPage(0), t.tRCD + t.tCL);
  // Same row: CAS only.
  EXPECT_EQ(d.accessOpenPage(1), t.tCL);
  // Other row, same bank: precharge + activate + CAS.
  const std::int64_t rowWords = d.geometry().rowWords;
  const std::int64_t conflictAddr = rowWords * d.geometry().banks;
  EXPECT_EQ(d.accessOpenPage(conflictAddr), t.tRP + t.tRCD + t.tCL);
}

TEST(Device, ClosedPageIsConstant) {
  auto d = dev();
  std::set<Cycles> durations;
  for (std::int64_t a : {0, 1, 64, 999, 12345}) {
    durations.insert(d.accessClosedPage(a));
  }
  EXPECT_EQ(durations.size(), 1u);
  EXPECT_EQ(*durations.begin(), d.closedPageDuration());
}

TEST(Device, RefreshClosesRows) {
  auto d = dev();
  d.accessOpenPage(0);
  d.refreshOne();
  const auto t = d.timing();
  EXPECT_EQ(d.accessOpenPage(0), t.tRCD + t.tCL);  // row buffer lost
}

TEST(Device, BankInterleaving) {
  auto d = dev();
  const auto t = d.timing();
  d.accessOpenPage(0);  // bank 0
  // Next row region maps to bank 1: no conflict with bank 0's open row.
  EXPECT_EQ(d.accessOpenPage(d.geometry().rowWords), t.tRCD + t.tCL);
  EXPECT_EQ(d.accessOpenPage(1), t.tCL);  // bank 0 row still open
}

// ---------------------------------------------------------------------------
// Controllers.
// ---------------------------------------------------------------------------

std::vector<Request> interleavedLoad(int clients, int perClient,
                                     Cycles spacing) {
  std::vector<Request> reqs;
  for (int c = 0; c < clients; ++c) {
    for (int k = 0; k < perClient; ++k) {
      // Different rows per client: worst-case row conflicts under FCFS.
      reqs.push_back(Request{c, c * 1024 + k * 256,
                             static_cast<Cycles>(k) * spacing});
    }
  }
  return reqs;
}

TEST(Fcfs, ServesInArrivalOrder) {
  FcfsOpenPageController ctl(dev());
  auto served = ctl.schedule({{0, 0, 5}, {1, 64, 0}, {0, 128, 10}});
  ASSERT_EQ(served.size(), 3u);
  EXPECT_EQ(served[0].request.client, 1);
  EXPECT_EQ(served[1].request.client, 0);
  EXPECT_TRUE(served[2].start >= served[1].finish);
}

TEST(Fcfs, NoLatencyBound) {
  FcfsOpenPageController ctl(dev());
  EXPECT_FALSE(ctl.latencyBound(0).has_value());
}

TEST(Fcfs, InterferenceGrowsWithCoRunnerLoad) {
  // Worst observed latency of client 0 grows as other clients add load —
  // the unbounded-interference shape of the baseline.
  auto worstLatency = [&](int coClients) {
    FcfsOpenPageController ctl(dev());
    auto served = ctl.schedule(interleavedLoad(1 + coClients, 16, 2));
    Cycles worst = 0;
    for (const auto& s : served) {
      if (s.request.client == 0) worst = std::max(worst, s.latency());
    }
    return worst;
  };
  EXPECT_LT(worstLatency(0), worstLatency(3));
  EXPECT_LT(worstLatency(3), worstLatency(7));
}

TEST(AmcTdm, BoundHoldsForAllRegulatedClients) {
  // Regulated clients (one outstanding request each): every request of
  // every client meets the analytical bound.
  const int clients = 4;
  AmcTdmController ctl(dev(), clients);
  const auto bound = ctl.latencyBound(0);
  ASSERT_TRUE(bound.has_value());
  auto served = ctl.schedule(interleavedLoad(clients, 32, *bound + 5));
  ASSERT_FALSE(served.empty());
  for (const auto& s : served) {
    EXPECT_LE(s.latency(), *bound) << "client " << s.request.client;
  }
}

TEST(AmcTdm, BoundIndependentOfCoRunnerBehavior) {
  // Client 0 regulated; co-runners SATURATE the controller.  Client 0's
  // worst latency stays within the same bound — the AMC claim.
  const int clients = 4;
  AmcTdmController light(dev(), clients);
  AmcTdmController heavy(dev(), clients);
  const auto bound = *light.latencyBound(0);

  std::vector<Request> reg;
  for (int k = 0; k < 16; ++k) {
    reg.push_back(Request{0, k * 256, static_cast<Cycles>(k) * (bound + 5)});
  }
  auto servedLight = light.schedule(reg);

  std::vector<Request> mixed = reg;
  for (int c = 1; c < clients; ++c) {
    for (int k = 0; k < 64; ++k) {
      mixed.push_back(Request{c, c * 4096 + k * 256, 0});  // burst at t=0
    }
  }
  auto servedHeavy = heavy.schedule(mixed);
  for (const auto* served : {&servedLight, &servedHeavy}) {
    for (const auto& s : *served) {
      if (s.request.client == 0) {
        EXPECT_LE(s.latency(), bound);
      }
    }
  }
}

TEST(AmcTdm, SlotsAreExclusive) {
  AmcTdmController ctl(dev(), 2);
  auto served = ctl.schedule({{0, 0, 0}, {1, 64, 0}});
  ASSERT_EQ(served.size(), 2u);
  // No overlap of service windows.
  EXPECT_TRUE(served[0].finish <= served[1].start ||
              served[1].finish <= served[0].start);
}

TEST(Predator, BoundHoldsForRegulatedClientUnderSaturation) {
  PredatorController ctl(dev(), {1, 1, 2});
  const auto bound = ctl.latencyBound(1);
  ASSERT_TRUE(bound.has_value());
  // Client 1 regulated (spacing > bound); clients 0 and 2 saturate.
  std::vector<Request> reqs;
  for (int k = 0; k < 16; ++k) {
    reqs.push_back(Request{1, 8192 + k * 256,
                           static_cast<Cycles>(k) * (*bound + 9)});
  }
  for (int c : {0, 2}) {
    for (int k = 0; k < 96; ++k) {
      reqs.push_back(Request{c, c * 4096 + k * 256, 0});
    }
  }
  auto served = ctl.schedule(reqs);
  for (const auto& s : served) {
    if (s.request.client == 1) {
      EXPECT_LE(s.latency(), *bound);
    }
  }
}

TEST(Predator, HighPriorityUnaffectedByLowPriorityLoad) {
  auto worstOfClient0 = [&](int lowLoad) {
    PredatorController ctl(dev(), {1, 1, 1, 1});
    std::vector<Request> reqs;
    for (int k = 0; k < 16; ++k) {
      reqs.push_back(Request{0, k * 256, static_cast<Cycles>(k) * 40});
    }
    for (int c = 1; c < 4; ++c) {
      for (int k = 0; k < lowLoad; ++k) {
        reqs.push_back(Request{c, c * 4096 + k * 256, 0});
      }
    }
    auto served = ctl.schedule(reqs);
    Cycles worst = 0;
    for (const auto& s : served) {
      if (s.request.client == 0) worst = std::max(worst, s.latency());
    }
    return worst;
  };
  const auto boundHolds = worstOfClient0(64);
  PredatorController ref(dev(), {1, 1, 1, 1});
  EXPECT_LE(boundHolds, *ref.latencyBound(0));
}

TEST(Predator, RejectsZeroBudget) {
  EXPECT_THROW(PredatorController(dev(), {1, 0}), std::runtime_error);
}

TEST(Controllers, ClientIdValidated) {
  AmcTdmController ctl(dev(), 2);
  EXPECT_THROW(ctl.schedule({{5, 0, 0}}), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Refresh.
// ---------------------------------------------------------------------------

std::pair<std::vector<Cycles>, std::vector<std::int64_t>> periodicAccesses(
    int count, Cycles period) {
  std::vector<Cycles> arrivals;
  std::vector<std::int64_t> addrs;
  for (int k = 0; k < count; ++k) {
    arrivals.push_back(static_cast<Cycles>(k) * period);
    addrs.push_back(k * 256);
  }
  return {arrivals, addrs};
}

TEST(Refresh, DistributedCausesLatencySpikes) {
  auto [arrivals, addrs] = periodicAccesses(200, 50);
  const auto r =
      runWithRefresh(dev(), RefreshScheme::Distributed, arrivals, addrs);
  EXPECT_GT(r.refreshesDuringTask, 0u);
  const auto stats = core::computeStats(r.accessLatencies);
  EXPECT_GT(stats.range(), 0.0);  // refresh-delayed accesses
  // The spike magnitude reflects tRFC.
  EXPECT_GE(stats.maximum,
            static_cast<double>(dev().closedPageDuration()));
}

TEST(Refresh, BurstGivesConstantAccessLatency) {
  auto [arrivals, addrs] = periodicAccesses(200, 50);
  const auto r = runWithRefresh(dev(), RefreshScheme::Burst, arrivals, addrs);
  const auto stats = core::computeStats(r.accessLatencies);
  EXPECT_DOUBLE_EQ(stats.range(), 0.0);  // perfectly flat
  EXPECT_EQ(r.refreshesDuringTask, 0u);
  // The cost did not vanish: it moved into the schedulable burst budget.
  EXPECT_GT(r.burstBudget, 0u);
  EXPECT_EQ(r.burstBudget,
            dev().timing().tRFC *
                static_cast<Cycles>(dev().timing().rowsPerBank));
}

TEST(Refresh, SchemesServeIdenticalWork) {
  auto [arrivals, addrs] = periodicAccesses(64, 100);
  const auto d = runWithRefresh(dev(), RefreshScheme::Distributed, arrivals,
                                addrs);
  const auto b = runWithRefresh(dev(), RefreshScheme::Burst, arrivals, addrs);
  EXPECT_EQ(d.accessLatencies.size(), b.accessLatencies.size());
  // Burst latencies are a pointwise lower envelope (no refresh collisions).
  for (std::size_t k = 0; k < b.accessLatencies.size(); ++k) {
    EXPECT_LE(b.accessLatencies[k], d.accessLatencies[k]);
  }
}

TEST(Refresh, MismatchedInputsThrow) {
  EXPECT_THROW(
      runWithRefresh(dev(), RefreshScheme::Burst, {0, 1}, {0}),
      std::runtime_error);
}

}  // namespace
}  // namespace pred::dram
