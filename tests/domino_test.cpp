// domino_test.cpp — Equation 4 of the paper: the PPC755-style domino
// effect.  T_{p_n}(q1*) = 9n+1, T_{p_n}(q2*) = 12n exactly, the states
// never converge, and SIPr_{p_n} <= (9n+1)/12n -> 3/4.

#include <gtest/gtest.h>

#include "core/definitions.h"
#include "core/domino.h"
#include "isa/exec.h"
#include "pipeline/domino_program.h"
#include "pipeline/inorder.h"
#include "pipeline/memory_iface.h"

namespace pred::pipeline {
namespace {

TEST(Domino, ExactCycleCountsMatchEquation4) {
  for (int n : {1, 2, 3, 5, 8, 13, 21, 34, 64}) {
    EXPECT_EQ(dominoTime(n, dominoStateQ1()),
              static_cast<Cycles>(9 * n + 1))
        << "n=" << n;
    EXPECT_EQ(dominoTime(n, dominoStateQ2()),
              static_cast<Cycles>(12 * n))
        << "n=" << n;
  }
}

TEST(Domino, EmptyPipelineIsTheSlowerState) {
  // As in Schneider's observation: the empty pipeline state loses.
  const auto q2 = dominoStateQ2();
  EXPECT_EQ(q2.iu0Busy, 0u);
  EXPECT_EQ(q2.iu1Busy, 0u);
  EXPECT_EQ(q2.lsuBusy, 0u);
  EXPECT_GT(dominoTime(8, q2), dominoTime(8, dominoStateQ1()));
}

TEST(Domino, DifferenceGrowsWithoutBound) {
  Cycles prevDiff = 0;
  for (int n = 1; n <= 32; n *= 2) {
    const Cycles t1 = dominoTime(n, dominoStateQ1());
    const Cycles t2 = dominoTime(n, dominoStateQ2());
    const Cycles diff = t2 - t1;
    EXPECT_GT(diff, prevDiff);
    prevDiff = diff;
  }
}

TEST(Domino, DetectorFlagsTheSeries) {
  core::DominoSeries s;
  for (std::uint64_t n = 1; n <= 12; ++n) {
    s.n.push_back(n);
    s.timeFromQ1.push_back(dominoTime(static_cast<int>(n), dominoStateQ1()));
    s.timeFromQ2.push_back(dominoTime(static_cast<int>(n), dominoStateQ2()));
  }
  const auto verdict = core::detectDomino(s);
  EXPECT_TRUE(verdict.dominoEffect);
  EXPECT_NEAR(verdict.diffSlope, 3.0, 0.05);
  EXPECT_NEAR(verdict.limitRatio, 0.75, 0.03);
}

TEST(Domino, SiprBoundApproachesThreeQuarters) {
  // SIPr_{p_n}(Q, I) <= T(q1*)/T(q2*) = (9n+1)/12n (Equation 4).
  for (int n : {1, 4, 16, 64}) {
    const double bound =
        static_cast<double>(dominoTime(n, dominoStateQ1())) /
        static_cast<double>(dominoTime(n, dominoStateQ2()));
    EXPECT_NEAR(bound, (9.0 * n + 1) / (12.0 * n), 1e-12);
  }
  const double atInfinity =
      static_cast<double>(dominoTime(200, dominoStateQ1())) /
      static_cast<double>(dominoTime(200, dominoStateQ2()));
  EXPECT_NEAR(atInfinity, 0.75, 0.001);
}

TEST(Domino, SiprViaDefinitionEvaluator) {
  // Evaluate Def. 4 over Q = {q1*, q2*} x I = {only input} through the
  // core evaluator, confirming the witnesses.
  const int n = 10;
  auto fn = [&](std::size_t q, std::size_t) -> core::Cycles {
    return dominoTime(n, q == 0 ? dominoStateQ1() : dominoStateQ2());
  };
  const auto m = core::TimingMatrix::compute(fn, 2, 1);
  const auto sipr = core::stateInducedPredictability(m);
  EXPECT_NEAR(sipr.value, (9.0 * n + 1) / (12.0 * n), 1e-12);
}

TEST(Domino, InOrderPipelineHasNoDominoOnSameProgram) {
  // The compositional baseline (ARM7-class): same program, additive
  // in-order timing — initial state plays no role at all.
  core::DominoSeries s;
  for (std::uint64_t n = 1; n <= 8; ++n) {
    const auto p = dominoProgram(static_cast<int>(n));
    auto run = isa::FunctionalCore::run(p, isa::Input{});
    run.trace.pop_back();
    FixedLatencyMemory mem(2);
    InOrderPipeline pipe(InOrderConfig{}, &mem);
    const auto t = pipe.run(run.trace);
    s.n.push_back(n);
    s.timeFromQ1.push_back(t);
    s.timeFromQ2.push_back(t);  // in-order model has no occupancy state
  }
  const auto verdict = core::detectDomino(s);
  EXPECT_FALSE(verdict.dominoEffect);
  EXPECT_DOUBLE_EQ(verdict.maxAbsDiff, 0.0);
}

TEST(Domino, StatesReproduceAcrossRepetitions) {
  // The defining property of the domino: per-repetition cost is constant
  // forever (the pipeline state after each repetition is equivalent to the
  // state before it).
  for (int n = 2; n <= 20; ++n) {
    EXPECT_EQ(dominoTime(n, dominoStateQ1()) -
                  dominoTime(n - 1, dominoStateQ1()),
              9u);
    EXPECT_EQ(dominoTime(n, dominoStateQ2()) -
                  dominoTime(n - 1, dominoStateQ2()),
              12u);
  }
}

TEST(Domino, ProgramIsPureDependentIntegerSequence) {
  const auto p = dominoProgram(2);
  for (std::size_t pc = 0; pc + 1 < p.size(); ++pc) {
    const auto op = p.code[pc].op;
    EXPECT_TRUE(op == isa::Op::ADD || op == isa::Op::MUL);
  }
  EXPECT_EQ(p.code.back().op, isa::Op::HALT);
}

}  // namespace
}  // namespace pred::pipeline
