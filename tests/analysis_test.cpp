// analysis_test.cpp — Exhaustive evaluation of Definition 2 and the
// soundness of the Figure 1 LB/UB bounds.

#include <gtest/gtest.h>

#include "analysis/exhaustive.h"
#include "analysis/wcet_bounds.h"
#include "isa/ast.h"
#include "isa/builder.h"
#include "isa/singlepath.h"
#include "isa/workloads.h"

namespace pred::analysis {
namespace {

using isa::workloads::randomArrayInputs;

struct BoundsCase {
  std::string name;
  isa::ast::AstProgram ast;
  std::string arrayName;
  std::int64_t len;
};

class Figure1Soundness : public ::testing::TestWithParam<BoundsCase> {};

TEST_P(Figure1Soundness, LbBcetWcetUbOrdered) {
  const auto& c = GetParam();
  const auto prog = isa::ast::compileBranchy(c.ast);
  isa::Cfg cfg(prog);

  std::vector<isa::Input> inputs{isa::Input{}};
  if (!c.arrayName.empty()) {
    auto more = randomArrayInputs(prog, c.arrayName, c.len, 6, 11, 16);
    inputs.insert(inputs.end(), more.begin(), more.end());
  }

  BoundsInputs bi;
  bi.dataCacheGeom = cache::CacheGeometry{4, 8, 2};
  bi.cacheTiming = cache::CacheTiming{1, 10};

  const auto setup = exhaustiveInOrder(prog, inputs, bi.dataCacheGeom,
                                       cache::Policy::LRU, bi.cacheTiming, 6,
                                       777, bi.pipeConfig);
  const auto bcet = setup.matrix.bcet();
  const auto wcet = setup.matrix.wcet();
  const auto d = figure1Decomposition(cfg, bi, bcet, wcet);
  EXPECT_TRUE(d.wellFormed()) << c.name << ": " << d.summary();
  EXPECT_LE(d.lowerBound, bcet);
  EXPECT_GE(d.upperBound, wcet);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, Figure1Soundness,
    ::testing::Values(
        BoundsCase{"sumLoop", isa::workloads::sumLoop(8), "a", 8},
        BoundsCase{"linearSearch", isa::workloads::linearSearch(8), "a", 8},
        BoundsCase{"branchTree", isa::workloads::branchTree(4), "", 0},
        BoundsCase{"bubbleSort", isa::workloads::bubbleSort(5), "a", 5},
        BoundsCase{"heapMix", isa::workloads::heapMix(6), "stat", 6},
        BoundsCase{"divKernel", isa::workloads::divKernel(5), "a", 5}),
    [](const ::testing::TestParamInfo<BoundsCase>& info) {
      return info.param.name;
    });

TEST(Exhaustive, MatrixDimensions) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(4));
  const auto inputs = randomArrayInputs(prog, "a", 4, 3, 5, 8);
  const auto setup =
      exhaustiveInOrder(prog, inputs, cache::CacheGeometry{4, 4, 2},
                        cache::Policy::LRU, cache::CacheTiming{}, 4, 9,
                        pipeline::InOrderConfig{});
  EXPECT_EQ(setup.matrix.numStates(), 4u);
  EXPECT_EQ(setup.matrix.numInputs(), 3u);
  EXPECT_GT(setup.matrix.bcet(), 0u);
}

TEST(Exhaustive, CountedLoopHasNoInputVariabilityWithFixedData) {
  // sumLoop touches the same addresses for every input: identical traces,
  // so IIPr = 1 on every state.
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(6));
  const auto inputs = randomArrayInputs(prog, "a", 6, 4, 3, 8);
  const auto setup =
      exhaustiveInOrder(prog, inputs, cache::CacheGeometry{4, 4, 2},
                        cache::Policy::LRU, cache::CacheTiming{}, 3, 9,
                        pipeline::InOrderConfig{});
  EXPECT_DOUBLE_EQ(core::inputInducedPredictability(setup.matrix).value, 1.0);
  // But the cache state does matter:
  EXPECT_LT(core::stateInducedPredictability(setup.matrix).value, 1.0);
}

TEST(Exhaustive, NonHaltingProgramThrows) {
  isa::ProgramBuilder b;
  b.label("spin").jmp("spin").halt();
  const auto prog = b.build();
  std::vector<isa::Input> inputs{isa::Input{}};
  EXPECT_THROW(exhaustiveInOrder(prog, inputs, cache::CacheGeometry{4, 4, 2},
                                 cache::Policy::LRU, cache::CacheTiming{}, 2,
                                 9, pipeline::InOrderConfig{}),
               std::runtime_error);
}

TEST(Bounds, UpperBoundCoversWorstCaseBranchSide) {
  // branchTree: the UB must cover whichever classification path is slower,
  // for every input combination (exhaustively checked over 2^4 corners).
  const auto ast = isa::workloads::branchTree(4);
  const auto prog = isa::ast::compileBranchy(ast);
  isa::Cfg cfg(prog);
  BoundsInputs bi;
  bi.dataCacheGeom = cache::CacheGeometry{4, 8, 2};
  const auto ub = ipetUpperBound(cfg, bi);

  std::vector<isa::Input> inputs;
  for (int mask = 0; mask < 16; ++mask) {
    isa::Input in;
    for (int d = 0; d < 4; ++d) {
      in = isa::mergeInputs(
          in, isa::varInput(prog, "x" + std::to_string(d),
                            (mask >> d) & 1 ? 20 : 0));
    }
    inputs.push_back(in);
  }
  const auto setup = exhaustiveInOrder(prog, inputs, bi.dataCacheGeom,
                                       cache::Policy::LRU, bi.cacheTiming, 5,
                                       31, bi.pipeConfig);
  EXPECT_GE(ub, setup.matrix.wcet());
}

TEST(Bounds, LowerBoundPositiveForStraightLineCode) {
  isa::ast::AstProgram a;
  a.scalars = {"x"};
  a.main = isa::ast::assign("x", isa::ast::constant(5));
  const auto prog = isa::ast::compileBranchy(a);
  isa::Cfg cfg(prog);
  BoundsInputs bi;
  EXPECT_GT(structuralLowerBound(cfg, bi), 0u);
}

TEST(Bounds, CountedLoopLowerBoundScalesWithTrips) {
  BoundsInputs bi;
  const auto p4 = isa::ast::compileBranchy(isa::workloads::sumLoop(4));
  const auto p16 = isa::ast::compileBranchy(isa::workloads::sumLoop(16));
  isa::Cfg c4(p4), c16(p16);
  EXPECT_GT(structuralLowerBound(c16, bi), structuralLowerBound(c4, bi));
}

TEST(Bounds, WhileLoopContributesNothingToLowerBound) {
  // linearSearch may exit immediately: its loop body must not inflate LB.
  const auto prog = isa::ast::compileBranchy(isa::workloads::linearSearch(32));
  isa::Cfg cfg(prog);
  BoundsInputs bi;
  const auto lb = structuralLowerBound(cfg, bi);
  // An input where the key is found at index 0:
  isa::Input in = isa::varInput(prog, "key", 0);
  auto setup = exhaustiveInOrder(prog, {in}, bi.dataCacheGeom,
                                 cache::Policy::LRU, bi.cacheTiming, 2, 1,
                                 bi.pipeConfig);
  EXPECT_LE(lb, setup.matrix.bcet());
}

TEST(Bounds, SinglePathTightensInherentVariance) {
  // The single-path compilation of the same AST has min == max loop bounds
  // and no input-dependent paths: its WCET - BCET (inherent variance)
  // collapses compared to the branchy compilation.
  const auto ast = isa::workloads::linearSearch(8);
  const auto branchy = isa::ast::compileBranchy(ast);
  const auto single = isa::ast::compileSinglePath(ast);

  auto variance = [&](const isa::Program& prog) {
    auto inputs = randomArrayInputs(prog, "a", 8, 5, 21, 8);
    for (auto& in : inputs) {
      in = isa::mergeInputs(in, isa::varInput(prog, "key", 3));
    }
    pipeline::InOrderConfig cfg;
    cfg.constantDiv = true;
    auto setup =
        exhaustiveInOrder(prog, inputs, cache::CacheGeometry{4, 8, 2},
                          cache::Policy::LRU, cache::CacheTiming{1, 1}, 1, 3,
                          cfg);  // 1 state, uniform mem: isolate input effect
    return setup.matrix.wcet() - setup.matrix.bcet();
  };
  EXPECT_GT(variance(branchy), 0u);
  EXPECT_EQ(variance(single), 0u);
}

TEST(Bounds, FunctionBodiesScaledByCallCounts) {
  // A function called from inside a counted loop must appear bound times in
  // the UB.
  const auto small = isa::workloads::callRoundRobin(1, 2, 1);
  const auto big = isa::workloads::callRoundRobin(1, 2, 10);
  BoundsInputs bi;
  const auto pSmall = isa::ast::compileBranchy(small);
  const auto pBig = isa::ast::compileBranchy(big);
  isa::Cfg cSmall(pSmall), cBig(pBig);
  EXPECT_GT(ipetUpperBound(cBig, bi), ipetUpperBound(cSmall, bi));
  // And soundness versus measurement:
  auto run = isa::FunctionalCore::run(pBig, isa::Input{});
  ASSERT_TRUE(run.completed);
  auto setup = exhaustiveInOrder(pBig, {isa::Input{}}, bi.dataCacheGeom,
                                 cache::Policy::LRU, bi.cacheTiming, 3, 5,
                                 bi.pipeConfig);
  EXPECT_GE(ipetUpperBound(cBig, bi), setup.matrix.wcet());
}

}  // namespace
}  // namespace pred::analysis
