// workloads_test.cpp — Functional correctness of the additional workload
// kernels and their use as predictability subjects.

#include <gtest/gtest.h>

#include "analysis/exhaustive.h"
#include "analysis/wcet_bounds.h"
#include "core/definitions.h"
#include "isa/ast.h"
#include "isa/exec.h"
#include "isa/singlepath.h"
#include "isa/workloads.h"

namespace pred::isa {
namespace {

std::int64_t readVar(const Program& p, const MachineState& st,
                     const std::string& name) {
  return st.mem[static_cast<std::size_t>(p.variables.at(name))];
}

TEST(Fibonacci, ComputesSequence) {
  // fib with f starting at 1: after n iterations f = fib(n+1) in the
  // 1,1,2,3,5,... convention.
  const std::int64_t expect[] = {1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89};
  for (int n = 0; n <= 10; ++n) {
    const auto p = ast::compileBranchy(workloads::fibonacci(n));
    auto r = FunctionalCore::run(p, Input{});
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(readVar(p, r.finalState, "f"), expect[n]) << "n=" << n;
  }
}

TEST(Fibonacci, FullyInputIndependent) {
  // No inputs at all: Pr over any state set equals SIPr; IIPr = 1.
  const auto p = ast::compileBranchy(workloads::fibonacci(12));
  const auto setup = analysis::exhaustiveInOrder(
      p, {Input{}, Input{}}, cache::CacheGeometry{4, 8, 2},
      cache::Policy::LRU, cache::CacheTiming{1, 10}, 6, 3,
      pipeline::InOrderConfig{});
  EXPECT_DOUBLE_EQ(core::inputInducedPredictability(setup.matrix).value, 1.0);
}

TEST(MatrixTranspose, TransposesCorrectly) {
  const auto p = ast::compileBranchy(workloads::matrixTranspose(4));
  Input in;
  const auto base = p.variables.at("m");
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) in.mem[base + i * 4 + j] = i * 10 + j;
  }
  auto r = FunctionalCore::run(p, in);
  ASSERT_TRUE(r.completed);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(r.finalState.mem[static_cast<std::size_t>(base + i * 4 + j)],
                j * 10 + i);
    }
  }
}

TEST(MatrixTranspose, InvolutionProperty) {
  // transpose(transpose(m)) == m: run the program twice.
  const auto p = ast::compileBranchy(workloads::matrixTranspose(3));
  Input in;
  const auto base = p.variables.at("m");
  for (int k = 0; k < 9; ++k) in.mem[base + k] = k * 7 + 1;
  auto r1 = FunctionalCore::run(p, in);
  Input in2;
  for (int k = 0; k < 9; ++k) {
    in2.mem[base + k] =
        r1.finalState.mem[static_cast<std::size_t>(base + k)];
  }
  auto r2 = FunctionalCore::run(p, in2);
  for (int k = 0; k < 9; ++k) {
    EXPECT_EQ(r2.finalState.mem[static_cast<std::size_t>(base + k)],
              k * 7 + 1);
  }
}

TEST(CrcLike, DeterministicAndInputSensitive) {
  const auto p = ast::compileBranchy(workloads::crcLike(4));
  const auto base = p.variables.at("a");
  Input a, b;
  for (int k = 0; k < 4; ++k) {
    a.mem[base + k] = k + 1;
    b.mem[base + k] = k + 2;
  }
  auto ra1 = FunctionalCore::run(p, a);
  auto ra2 = FunctionalCore::run(p, a);
  auto rb = FunctionalCore::run(p, b);
  EXPECT_EQ(readVar(p, ra1.finalState, "crc"),
            readVar(p, ra2.finalState, "crc"));
  EXPECT_NE(readVar(p, ra1.finalState, "crc"),
            readVar(p, rb.finalState, "crc"));
}

TEST(CrcLike, SinglePathEquivalent) {
  const auto ast = workloads::crcLike(3);
  const auto pb = ast::compileBranchy(ast);
  const auto ps = ast::compileSinglePath(ast);
  const auto inputsB = workloads::randomArrayInputs(pb, "a", 3, 4, 77, 256);
  const auto inputsS = workloads::randomArrayInputs(ps, "a", 3, 4, 77, 256);
  for (std::size_t k = 0; k < inputsB.size(); ++k) {
    auto rb = FunctionalCore::run(pb, inputsB[k]);
    auto rs = FunctionalCore::run(ps, inputsS[k]);
    EXPECT_EQ(readVar(pb, rb.finalState, "crc"),
              readVar(ps, rs.finalState, "crc"));
  }
}

TEST(CrcLike, BranchyTimeVariesSinglePathDoesNot) {
  const auto ast = workloads::crcLike(3);
  for (const bool singlePath : {false, true}) {
    const auto p = singlePath ? ast::compileSinglePath(ast)
                              : ast::compileBranchy(ast);
    const auto inputs = workloads::randomArrayInputs(p, "a", 3, 6, 5, 256);
    pipeline::InOrderConfig cfg;
    cfg.constantDiv = true;
    const auto setup = analysis::exhaustiveInOrder(
        p, inputs, cache::CacheGeometry{4, 8, 2}, cache::Policy::LRU,
        cache::CacheTiming{2, 2}, 1, 3, cfg);
    const double iipr = core::inputInducedPredictability(setup.matrix).value;
    if (singlePath) {
      EXPECT_DOUBLE_EQ(iipr, 1.0);
    } else {
      EXPECT_LT(iipr, 1.0);
    }
  }
}

TEST(NewWorkloads, BoundsSound) {
  const ast::AstProgram progs[] = {
      workloads::fibonacci(8),
      workloads::matrixTranspose(3),
      workloads::crcLike(3),
  };
  for (const auto& a : progs) {
    const auto p = ast::compileBranchy(a);
    Cfg cfg(p);
    analysis::BoundsInputs bi;
    bi.dataCacheGeom = cache::CacheGeometry{4, 8, 2};
    bi.cacheTiming = cache::CacheTiming{1, 10};
    std::vector<Input> inputs{Input{}};
    if (p.variables.count("a")) {
      auto more = workloads::randomArrayInputs(p, "a", 3, 4, 11, 256);
      inputs.insert(inputs.end(), more.begin(), more.end());
    }
    if (p.variables.count("m")) {
      auto more = workloads::randomArrayInputs(p, "m", 9, 4, 11, 64);
      inputs.insert(inputs.end(), more.begin(), more.end());
    }
    const auto setup = analysis::exhaustiveInOrder(
        p, inputs, bi.dataCacheGeom, cache::Policy::LRU, bi.cacheTiming, 4,
        9, bi.pipeConfig);
    EXPECT_LE(analysis::structuralLowerBound(cfg, bi), setup.matrix.bcet());
    EXPECT_GE(analysis::ipetUpperBound(cfg, bi), setup.matrix.wcet());
  }
}

}  // namespace
}  // namespace pred::isa
