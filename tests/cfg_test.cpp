// cfg_test.cpp — Basic blocks, edges, dominators, natural loops.

#include <gtest/gtest.h>

#include "isa/ast.h"
#include "isa/builder.h"
#include "isa/cfg.h"
#include "isa/workloads.h"

namespace pred::isa {
namespace {

TEST(Cfg, StraightLineIsOneBlock) {
  ProgramBuilder b;
  b.li(1, 1).addi(1, 1, 1).halt();
  Cfg cfg(b.build());
  EXPECT_EQ(cfg.numBlocks(), 1);
  EXPECT_TRUE(cfg.block(0).succs.empty());
}

TEST(Cfg, DiamondHasFourBlocks) {
  ProgramBuilder b;
  b.li(1, 1);
  b.beq(1, 0, "else");
  b.li(2, 10);
  b.jmp("end");
  b.label("else");
  b.li(2, 20);
  b.label("end");
  b.halt();
  const Program prog = b.build();
  Cfg cfg(prog);
  EXPECT_EQ(cfg.numBlocks(), 4);
  // Entry has two successors.
  EXPECT_EQ(cfg.block(cfg.entry()).succs.size(), 2u);
  // Exit block (the join) has two predecessors.
  const auto exitBlock =
      cfg.blockOf(static_cast<std::int32_t>(prog.size()) - 1);
  EXPECT_EQ(cfg.block(exitBlock).preds.size(), 2u);
}

TEST(Cfg, LoopDetected) {
  ProgramBuilder b;
  b.li(1, 0).li(2, 5);
  b.label("loop");
  b.addi(1, 1, 1);
  b.blt(1, 2, "loop").bound(5, 5);
  b.halt();
  Cfg cfg(b.build());
  ASSERT_EQ(cfg.loops().size(), 1u);
  EXPECT_EQ(cfg.loops()[0].bound, 5);
  EXPECT_EQ(cfg.loops()[0].minBound, 5);
}

TEST(Cfg, WhileLoopHasMinBoundZero) {
  const auto prog = ast::compileBranchy(workloads::linearSearch(8));
  Cfg cfg(prog);
  bool sawWhile = false;
  for (const auto& loop : cfg.loops()) {
    if (loop.bound == 8 && loop.minBound == 0) sawWhile = true;
  }
  EXPECT_TRUE(sawWhile);
}

TEST(Cfg, NestedLoops) {
  const auto prog = ast::compileBranchy(workloads::matMul(3));
  Cfg cfg(prog);
  EXPECT_EQ(cfg.loops().size(), 3u);  // i, j, k
  for (const auto& loop : cfg.loops()) EXPECT_EQ(loop.bound, 3);
}

TEST(Cfg, EntryDominatesEverythingReachable) {
  const auto prog = ast::compileBranchy(workloads::bubbleSort(4));
  Cfg cfg(prog);
  for (const auto& bb : cfg.blocks()) {
    if (bb.id == cfg.entry()) continue;
    // Blocks reachable from entry are dominated by it.
    if (!bb.preds.empty()) {
      EXPECT_TRUE(cfg.dominates(cfg.entry(), bb.id));
    }
  }
}

TEST(Cfg, DominatorOfBranchTargets) {
  ProgramBuilder b;
  b.li(1, 1);
  b.beq(1, 0, "else");
  b.li(2, 10);
  b.jmp("end");
  b.label("else");
  b.li(2, 20);
  b.label("end");
  b.halt();
  Cfg cfg(b.build());
  const auto thenB = cfg.blockOf(2);
  const auto elseB = cfg.blockOf(4);
  // Neither arm dominates the join (the HALT at index 5).
  const auto endB = cfg.blockOf(5);
  EXPECT_FALSE(cfg.dominates(thenB, endB));
  EXPECT_FALSE(cfg.dominates(elseB, endB));
  EXPECT_TRUE(cfg.dominates(cfg.entry(), endB));
}

TEST(Cfg, BlockOfCoversEveryInstruction) {
  const auto prog = ast::compileBranchy(workloads::branchTree(3));
  Cfg cfg(prog);
  for (std::int32_t pc = 0; pc < static_cast<std::int32_t>(prog.size());
       ++pc) {
    const auto bid = cfg.blockOf(pc);
    ASSERT_GE(bid, 0);
    const auto& bb = cfg.block(bid);
    EXPECT_GE(pc, bb.begin);
    EXPECT_LT(pc, bb.end);
  }
}

TEST(Cfg, CallFallThroughEdge) {
  ProgramBuilder b;
  b.call("f");
  b.li(1, 1);
  b.halt();
  b.beginFunction("f");
  b.ret();
  b.endFunction();
  Cfg cfg(b.build());
  const auto callBlock = cfg.blockOf(0);
  const auto afterBlock = cfg.blockOf(1);
  const auto& succs = cfg.block(callBlock).succs;
  EXPECT_NE(std::find(succs.begin(), succs.end(), afterBlock), succs.end());
}

TEST(Cfg, RpoStartsAtEntry) {
  const auto prog = ast::compileBranchy(workloads::sumLoop(4));
  Cfg cfg(prog);
  ASSERT_FALSE(cfg.rpo().empty());
  EXPECT_EQ(cfg.rpo().front(), cfg.entry());
}

TEST(Cfg, DotRendering) {
  const auto prog = ast::compileBranchy(workloads::sumLoop(2));
  Cfg cfg(prog);
  const auto dot = cfg.toDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace pred::isa
