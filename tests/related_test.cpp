// related_test.cpp — The related-work predictability notions of the paper's
// Section 4: Bernardes' dynamical-system predictability, Thiele & Wilhelm's
// bound-distance measure, Kirner & Puschner's holistic combination.

#include <gtest/gtest.h>

#include <cmath>

#include "core/related.h"

namespace pred::core {
namespace {

TEST(Bernardes, ContractingMapIsPredictable) {
  // f(x) = x/2: perturbations shrink; predicted orbits stay within ~2*delta.
  DynamicalSystem sys{[](double x) { return x / 2; }};
  const auto r = bernardesPredictableAt(sys, 1.0, 0.01, 0.05, 50);
  EXPECT_TRUE(r.predictable);
  EXPECT_LT(r.worstDeviation, 0.05);
}

TEST(Bernardes, ChaoticLogisticMapIsUnpredictable) {
  // Logistic map r = 4 on [0,1]: positive Lyapunov exponent; a 1e-6
  // perturbation exceeds any reasonable eps within a short horizon.
  DynamicalSystem sys{[](double x) { return 4.0 * x * (1.0 - x); }};
  const auto r = bernardesPredictableAt(sys, 0.2, 1e-6, 0.05, 60);
  EXPECT_FALSE(r.predictable);
  EXPECT_GT(r.worstDeviation, 0.05);
}

TEST(Bernardes, IdentityMapAccumulatesLinearly) {
  // f = id: each step re-perturbs by delta; deviation grows ~ i * delta.
  DynamicalSystem sys{[](double x) { return x; }};
  const auto ok = bernardesPredictableAt(sys, 0.0, 0.01, 1.0, 50);
  EXPECT_TRUE(ok.predictable);  // 50 * 0.01 = 0.5 < 1.0
  const auto bad = bernardesPredictableAt(sys, 0.0, 0.01, 0.2, 50);
  EXPECT_FALSE(bad.predictable);
}

TEST(Bernardes, ExpandingMapUnpredictableEvenWithTinyDelta) {
  DynamicalSystem sys{[](double x) { return 3.0 * x; }};
  const auto r = bernardesPredictableAt(sys, 1.0, 1e-9, 0.01, 60);
  EXPECT_FALSE(r.predictable);
}

TEST(Bernardes, RejectsDegenerateGrid) {
  DynamicalSystem sys{[](double x) { return x; }};
  EXPECT_THROW(bernardesPredictableAt(sys, 0, 0.1, 1, 5, 1),
               std::runtime_error);
}

TEST(ThieleWilhelm, GapsFromDecomposition) {
  BoundsDecomposition d;
  d.lowerBound = 50;
  d.bcet = 80;
  d.wcet = 120;
  d.upperBound = 150;
  const auto m = thieleWilhelm(d);
  EXPECT_EQ(m.wcetGap, 30u);
  EXPECT_EQ(m.bcetGap, 30u);
  EXPECT_DOUBLE_EQ(m.worstCasePredictability, 0.8);
  EXPECT_NE(m.summary().find("30"), std::string::npos);
}

TEST(ThieleWilhelm, ExactAnalysisGivesPerfectWorstCase) {
  BoundsDecomposition d;
  d.lowerBound = 80;
  d.bcet = 80;
  d.wcet = 120;
  d.upperBound = 120;
  const auto m = thieleWilhelm(d);
  EXPECT_EQ(m.wcetGap, 0u);
  EXPECT_EQ(m.bcetGap, 0u);
  EXPECT_DOUBLE_EQ(m.worstCasePredictability, 1.0);
}

TEST(ThieleWilhelm, MeasuresAnalysisNotSystem) {
  // The paper's inherence critique, demonstrated: the SAME system under a
  // better analysis scores as "more predictable" in this measure — which is
  // why the paper insists predictability be inherent.
  BoundsDecomposition coarse{100, 200, 300, 600};
  BoundsDecomposition tight{180, 200, 300, 320};
  EXPECT_GT(thieleWilhelm(tight).worstCasePredictability,
            thieleWilhelm(coarse).worstCasePredictability);
  // Inherent variance (WCET-BCET) is identical:
  EXPECT_EQ(coarse.inherentVariance(), tight.inherentVariance());
}

TEST(Holistic, CombinesInherentAndWorstCase) {
  TimingMatrix m(2, 2);
  m.at(0, 0) = 100;
  m.at(0, 1) = 150;
  m.at(1, 0) = 120;
  m.at(1, 1) = 200;
  BoundsDecomposition d{80, 100, 200, 250};
  const auto h = kirnerPuschnerHolistic(m, d);
  EXPECT_DOUBLE_EQ(h.inherent, 0.5);
  EXPECT_DOUBLE_EQ(h.worstCase, 0.8);
  EXPECT_DOUBLE_EQ(h.combined(), 0.4);
}

TEST(Holistic, PerfectSystemAndAnalysisGiveOne) {
  TimingMatrix m(2, 2);
  for (std::size_t q = 0; q < 2; ++q) {
    for (std::size_t i = 0; i < 2; ++i) m.at(q, i) = 42;
  }
  BoundsDecomposition d{42, 42, 42, 42};
  EXPECT_DOUBLE_EQ(kirnerPuschnerHolistic(m, d).combined(), 1.0);
}

}  // namespace
}  // namespace pred::core
