// differential_test.cpp — The harness that gates every replay fast path:
// seeded-random structured programs and inputs, crossed with EVERY
// PlatformRegistry preset, asserting that the packed-replay path reproduces
// the interpreted walk bit-identically — cell for cell on the timing
// matrix, and witness for witness on the derived measures (Pr/SIPr/IIPr
// cross-checked between the packed streaming reduction and the core::
// matrix evaluators over the interpreted matrix).
//
// This is the confidence substrate the ROADMAP's scaling steps lean on: a
// fast path (today: the in-order stream replay and the OOO kernel replay,
// including the ooo-preschedule drain mode and the stall-skip of
// pipeline/ooo_kernel.h; tomorrow: whatever comes next) ships only behind
// this harness.  Presets without a packed path run through it too — there
// the two engines take the same legacy route and the assertion is a
// tautology, which is exactly what makes the sweep future-proof: a model
// that GAINS a fast path later is already covered the day it flips
// supportsPackedReplay().

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "cache/geometry.h"
#include "core/definitions.h"
#include "core/measures.h"
#include "exp/engine.h"
#include "exp/platform.h"
#include "isa/ast.h"
#include "isa/exec.h"
#include "isa/workloads.h"
#include "witness_expect.h"

namespace pred {
namespace {

/// Random but reproducible inputs for the variables every randomAst program
/// declares (x0..x3 scalars and the 8-element array a).
isa::Input inputFor(const isa::Program& p, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  isa::Input in;
  for (int k = 0; k < 4; ++k) {
    in = isa::mergeInputs(
        in, isa::varInput(p, "x" + std::to_string(k),
                          static_cast<std::int64_t>(rng() % 32) - 8));
  }
  const auto base = p.variables.at("a");
  for (int k = 0; k < 8; ++k) {
    in.mem[base + k] = static_cast<std::int64_t>(rng() % 64) - 16;
  }
  return in;
}

/// One full differential sweep of a (program, inputs) pair over every
/// registry preset with the given options: packed matrix == interpreted
/// matrix cell-for-cell, and packed streaming measures == interpreted
/// matrix evaluators value- and witness-for-witness.
void sweepAllPresets(const isa::Program& prog,
                     const std::vector<isa::Input>& inputs,
                     exp::PlatformOptions opts, const std::string& tag) {
  for (const auto& name : exp::PlatformRegistry::instance().names()) {
    const std::string label = tag + "/" + name;
    const auto model =
        exp::PlatformRegistry::instance().make(name, prog, opts);

    // Odd tile shapes so tiles straddle the grid edges both ways.
    exp::EngineConfig interpCfg{2, 3, 5};
    interpCfg.usePackedReplay = false;
    exp::EngineConfig packedCfg{2, 3, 5};
    exp::ExperimentEngine interp(interpCfg);
    exp::ExperimentEngine packed(packedCfg);

    const auto mi = interp.computeMatrix(*model, prog, inputs);
    const auto mp = packed.computeMatrix(*model, prog, inputs);
    ASSERT_TRUE(mi == mp) << label << ": packed matrix diverges";

    const auto acc = packed.reduceCells(*model, prog, inputs);
    EXPECT_EQ(acc.bcet(), mi.bcet()) << label;
    EXPECT_EQ(acc.wcet(), mi.wcet()) << label;
    expectSamePredictabilityValue(acc.pr(), core::timingPredictability(mi),
                                  label + "/Pr");
    expectSamePredictabilityValue(acc.sipr(),
                                  core::stateInducedPredictability(mi),
                                  label + "/SIPr");
    expectSamePredictabilityValue(acc.iipr(),
                                  core::inputInducedPredictability(mi),
                                  label + "/IIPr");
  }
}

/// Collapse differential: the same sweep shape as sweepAllPresets, but
/// pitting collapseTraceClasses on vs off over an input set with
/// deliberately duplicated (and trace-equal-but-distinct) inputs.  The
/// comparison is identicalTo — the COMPLETE accumulator state, every
/// per-axis extreme and witness index, not just the derived measures — on
/// both the packed and interpreted paths and on the one-walk batch path,
/// plus a witness-for-witness cross-check against the matrix evaluators.
void sweepCollapseAllPresets(const isa::Program& prog,
                             const std::vector<isa::Input>& inputs,
                             exp::PlatformOptions opts,
                             const std::string& tag) {
  for (const auto& name : exp::PlatformRegistry::instance().names()) {
    const std::string label = tag + "/" + name;
    const auto model =
        exp::PlatformRegistry::instance().make(name, prog, opts);

    for (const bool packed : {false, true}) {
      exp::EngineConfig offCfg{2, 3, 5};
      offCfg.usePackedReplay = packed;
      offCfg.collapseTraceClasses = false;
      exp::EngineConfig onCfg{2, 3, 5};
      onCfg.usePackedReplay = packed;
      onCfg.collapseTraceClasses = true;
      exp::ExperimentEngine off(offCfg);
      exp::ExperimentEngine on(onCfg);

      const auto accOff = off.reduceCells(*model, prog, inputs);
      const auto accOn = on.reduceCells(*model, prog, inputs);
      ASSERT_TRUE(accOn.identicalTo(accOff))
          << label << (packed ? "/packed" : "/interp")
          << ": collapsed accumulator diverges";
      // The duplicated inputs guarantee collapse actually engaged — a
      // silently inert dedup must fail here, not just run slower.
      EXPECT_GT(on.metrics().counter("engine.cells_collapsed").value(), 0u)
          << label;
      EXPECT_LT(on.metrics().counter("engine.trace_classes").value(),
                static_cast<std::uint64_t>(inputs.size()))
          << label;

      // The one-walk batch path collapses identically too.
      const exp::ExperimentEngine::GridSpec spec{model.get(), &prog,
                                                 &inputs};
      const auto batchOn = on.reduceCellsBatch({spec});
      ASSERT_EQ(batchOn.size(), 1u);
      EXPECT_TRUE(batchOn[0].identicalTo(accOff))
          << label << (packed ? "/packed" : "/interp")
          << ": collapsed batch diverges";
    }

    // Tie the collapsed streaming result to the matrix-evaluator ground
    // truth, witness for witness.
    exp::EngineConfig interpCfg{2, 3, 5};
    interpCfg.usePackedReplay = false;
    interpCfg.collapseTraceClasses = false;
    exp::ExperimentEngine interp(interpCfg);
    exp::ExperimentEngine collapsed(exp::EngineConfig{2, 3, 5});
    const auto mi = interp.computeMatrix(*model, prog, inputs);
    const auto acc = collapsed.reduceCells(*model, prog, inputs);
    expectSamePredictabilityValue(acc.pr(), core::timingPredictability(mi),
                                  label + "/collapsed-Pr");
    expectSamePredictabilityValue(acc.sipr(),
                                  core::stateInducedPredictability(mi),
                                  label + "/collapsed-SIPr");
    expectSamePredictabilityValue(acc.iipr(),
                                  core::inputInducedPredictability(mi),
                                  label + "/collapsed-IIPr");
  }
}

class PackedDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackedDifferential, AllPresetsBitIdenticalOnRandomPrograms) {
  const auto seed = GetParam();
  const auto prog =
      isa::ast::compileBranchy(isa::workloads::randomAst(seed));
  std::vector<isa::Input> inputs;
  for (std::uint64_t k = 1; k <= 5; ++k) {
    inputs.push_back(inputFor(prog, seed * 1000 + k));
  }
  exp::PlatformOptions opts;
  opts.numStates = 5;
  sweepAllPresets(prog, inputs, opts, "seed" + std::to_string(seed));
}

TEST_P(PackedDifferential, AllPresetsBitIdenticalOnNonPow2Geometry) {
  // lineWords=3, numSets=5 forces the division (non-shift) address path of
  // the packed sims; ways=2 keeps every policy packable.
  const auto seed = GetParam();
  const auto prog =
      isa::ast::compileBranchy(isa::workloads::randomAst(seed));
  std::vector<isa::Input> inputs;
  for (std::uint64_t k = 1; k <= 3; ++k) {
    inputs.push_back(inputFor(prog, seed * 77 + k));
  }
  exp::PlatformOptions opts;
  opts.numStates = 4;
  opts.dataGeom = cache::CacheGeometry{3, 5, 2};
  opts.instrGeom = cache::CacheGeometry{3, 7, 2};
  sweepAllPresets(prog, inputs, opts, "np2-seed" + std::to_string(seed));
}

TEST_P(PackedDifferential, CollapseBitIdenticalOnDuplicateHeavyGrids) {
  const auto seed = GetParam();
  const auto prog =
      isa::ast::compileBranchy(isa::workloads::randomAst(seed));
  std::vector<isa::Input> inputs;
  for (std::uint64_t k = 1; k <= 4; ++k) {
    inputs.push_back(inputFor(prog, seed * 31 + k));
  }
  // Deliberate duplicates: a renamed exact copy (shares the trace-store
  // entry), a variant with one never-read scratch word (distinct entry,
  // identical trace), and a plain repeat — so every sweep has strictly
  // fewer trace classes than inputs.
  isa::Input renamed = inputs[0];
  renamed.name = "dup-of-0";
  inputs.push_back(std::move(renamed));
  isa::Input scratch = inputs[1];
  scratch.mem[prog.layout.memWords - 3] = 7;
  scratch.name = "scratch-of-1";
  inputs.push_back(std::move(scratch));
  inputs.push_back(inputs[2]);

  exp::PlatformOptions opts;
  opts.numStates = 4;
  sweepCollapseAllPresets(prog, inputs, opts,
                          "dup-seed" + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackedDifferential,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST(PackedDifferential, OooPresetsReportPackedReplaySupport) {
  // The acceptance bit of this PR: the OOO platforms joined the fast path.
  const auto prog =
      isa::ast::compileBranchy(isa::workloads::randomAst(1));
  exp::PlatformOptions opts;
  opts.numStates = 4;
  for (const char* name :
       {"ooo-fifo", "ooo-lru", "ooo-fixedlat", "ooo-preschedule"}) {
    const auto model =
        exp::PlatformRegistry::instance().make(name, prog, opts);
    EXPECT_TRUE(model->supportsPackedReplay()) << name;
  }
  // Unpackable geometry still falls back gracefully on the cached OOO
  // models (ways beyond the packed metadata word).
  opts.dataGeom = cache::CacheGeometry{4, 2, 17};
  const auto wide =
      exp::PlatformRegistry::instance().make("ooo-fifo", prog, opts);
  EXPECT_FALSE(wide->supportsPackedReplay());
  const std::vector<isa::Input> inputs = {inputFor(prog, 9)};
  exp::ExperimentEngine engine;
  exp::EngineConfig serialCfg{1};
  serialCfg.usePackedReplay = false;
  exp::ExperimentEngine reference(serialCfg);
  EXPECT_TRUE(engine.computeMatrix(*wide, prog, inputs) ==
              reference.computeMatrix(*wide, prog, inputs));
}

TEST(PackedDifferential, PrescheduleDrainModeMatchesAcrossManyOccupancies) {
  // The drainBefore_ preschedule mode is the subtlest kernel path (drain
  // stalls interact with the stall-skip); pin it across the full occupancy
  // enumeration rather than the default |Q| clamp.
  const auto prog =
      isa::ast::compileBranchy(isa::workloads::randomAst(21));
  std::vector<isa::Input> inputs;
  for (std::uint64_t k = 1; k <= 4; ++k) {
    inputs.push_back(inputFor(prog, 2100 + k));
  }
  exp::PlatformOptions opts;
  opts.numStates = 15;  // every enumerated (iu0, iu1, lsu) residue
  const auto model =
      exp::PlatformRegistry::instance().make("ooo-preschedule", prog, opts);
  ASSERT_TRUE(model->supportsPackedReplay());
  exp::EngineConfig interpCfg{1};
  interpCfg.usePackedReplay = false;
  exp::ExperimentEngine interp(interpCfg);
  exp::ExperimentEngine packed;
  EXPECT_TRUE(interp.computeMatrix(*model, prog, inputs) ==
              packed.computeMatrix(*model, prog, inputs));
}

}  // namespace
}  // namespace pred
