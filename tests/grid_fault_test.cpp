// grid_fault_test.cpp — The gate for PR 8's robustness layer: the fault-
// point registry must parse plans strictly and fire deterministically
// (after/count gates, named Injected exceptions, zero-cost disarmed); the
// net layer's poll()-based deadlines must turn silent peers into
// TimeoutError instead of forever-blocks (read, write, and mid-header
// stalls); the cache journal must recover the longest valid prefix at
// EVERY truncation offset, survive bit flips by resyncing past one record,
// and never refuse to start; the persistent ResultCache must serve
// byte-identical hits across a restart, obey its LRU bound on reload, and
// treat any store failure as "persistence lost", never a failed job; and
// the server must drop stalled/injected-EPIPE connections (counted in
// grid.conn.*) while the daemon keeps serving — including a full
// stop/restart with the same cache dir answering from disk.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/measures.h"
#include "exp/engine.h"
#include "exp/platform.h"
#include "exp/shard.h"
#include "grid/attach_worker.h"
#include "grid/cache.h"
#include "grid/cache_store.h"
#include "grid/client.h"
#include "grid/faultpoint.h"
#include "grid/fingerprint.h"
#include "grid/net.h"
#include "grid/protocol.h"
#include "grid/server.h"
#include "study/distributed.h"
#include "study/workloads.h"

namespace pred {
namespace {

using exp::ShardSpec;

// ------------------------------------------------------------ test helpers

/// Disarms any fault plan when a test scope ends, so one test's injection
/// can never leak into the next.
struct FaultGuard {
  FaultGuard() { grid::fault::disarm(); }
  ~FaultGuard() { grid::fault::disarm(); }
};

/// A fresh, collision-free unix socket path under /tmp.
std::string uniqueSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/pred-fault-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// mkdtemp-backed scratch directory, scrubbed on destruction.
struct TempDir {
  TempDir() {
    char buf[] = "/tmp/pred-cache-XXXXXX";
    if (::mkdtemp(buf) == nullptr) throw std::runtime_error("mkdtemp failed");
    path = buf;
  }
  ~TempDir() {
    ::unlink((path + "/results.journal").c_str());
    ::unlink((path + "/results.journal.tmp").c_str());
    ::rmdir(path.c_str());
  }
  std::string path;
};

/// A connected AF_UNIX stream pair with RAII ends.
struct SocketPair {
  SocketPair() {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      throw std::runtime_error("socketpair failed");
    }
    a.reset(sv[0]);
    b.reset(sv[1]);
  }
  grid::net::Fd a, b;
};

/// Overwrites the journal file with exactly `bytes`.
void writeJournal(const std::string& dir, const std::string& bytes) {
  std::ofstream f(dir + "/results.journal",
                  std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good());
}

/// Recovers the store under `dir` into a map (append order collapses to
/// last-wins, same as the cache's replay).
std::map<std::string, std::string> recoverAll(const std::string& dir,
                                              grid::RecoveryStats* stats) {
  grid::CacheStore store(grid::CacheStore::Config{dir, 16});
  std::map<std::string, std::string> out;
  const grid::RecoveryStats s =
      store.recover([&](std::string fp, std::string payload) {
        out[std::move(fp)] = std::move(payload);
      });
  if (stats != nullptr) *stats = s;
  return out;
}

/// The small grid the server tests evaluate (the same shape
/// grid_test.cpp gates on), plus its single-process reference bytes.
struct TestGrid {
  ShardSpec whole;
  std::string singleBytes;
};

TestGrid makeTestGrid() {
  exp::PlatformOptions options;
  options.numStates = 8;
  const auto w = study::WorkloadRegistry::instance().make("bubblesort-8");
  const auto model = exp::PlatformRegistry::instance().make(
      "inorder-lru", w.program, options);
  exp::ExperimentEngine engine;

  TestGrid g;
  g.whole.platform = "inorder-lru";
  g.whole.workload = "bubblesort-8";
  g.whole.options = options;
  g.whole.qEnd = model->numStates();
  g.whole.iEnd = w.inputs.size();
  g.singleBytes = engine.reduceCells(*model, w.program, w.inputs).serialize();
  return g;
}

/// In-process GridServer on a background thread, with the PR 8 knobs
/// (cacheDir, connTimeoutMs) exposed.
class InProcessServer {
 public:
  explicit InProcessServer(const std::string& cacheDir = std::string(),
                           std::uint64_t connTimeoutMs = 30'000,
                           std::size_t cacheEntries = 64,
                           bool workerListen = false) {
    path_ = uniqueSocketPath();
    endpointText_ = "unix:" + path_;
    grid::ServerConfig cfg;
    cfg.endpoint = endpointText_;
    cfg.scheduler.workers = 2;
    cfg.scheduler.retryBackoffMs = 1;
    cfg.cacheEntries = cacheEntries;
    cfg.cacheDir = cacheDir;
    cfg.connTimeoutMs = connTimeoutMs;
    cfg.eval = study::gridShardEvaluator();
    if (workerListen) {
      workerPath_ = uniqueSocketPath();
      cfg.workerEndpoint = "unix:" + workerPath_;
    }
    server_.emplace(std::move(cfg));
    thread_ = std::thread([this] { server_->serveForever(); });
  }

  ~InProcessServer() {
    stop();
    ::unlink(path_.c_str());
    if (!workerPath_.empty()) ::unlink(workerPath_.c_str());
  }

  const std::string& endpoint() const { return endpointText_; }
  std::string workerEndpoint() const { return "unix:" + workerPath_; }
  grid::GridServer& server() { return *server_; }

  /// Shutdown handshake + join; all test clients must be closed first
  /// (the server handles connections sequentially).
  void stop() {
    if (!thread_.joinable()) return;
    grid::GridClient(endpointText_).shutdownServer();
    thread_.join();
  }

 private:
  std::string path_;
  std::string workerPath_;
  std::string endpointText_;
  std::optional<grid::GridServer> server_;
  std::thread thread_;
};

std::uint64_t counterOf(grid::GridServer& server, const std::string& name) {
  for (const auto& [n, v] : server.metrics().counterValues()) {
    if (n == name) return v;
  }
  return 0;
}

// --------------------------------------------------------- fault registry

TEST(FaultPlan, ErrorActionFiresOnceWithPointName) {
  FaultGuard guard;
  EXPECT_FALSE(grid::fault::anyArmed());
  grid::fault::armPlan("net.read:error");
  EXPECT_TRUE(grid::fault::anyArmed());
  EXPECT_EQ(grid::fault::planText(), "net.read:error");

  try {
    grid::fault::check("net.read");
    FAIL() << "armed point did not fire";
  } catch (const grid::fault::Injected& e) {
    EXPECT_EQ(e.point(), "net.read");
    EXPECT_NE(std::string(e.what()).find("net.read"), std::string::npos);
  }
  // Default count=1: the rule is spent.
  EXPECT_NO_THROW(grid::fault::check("net.read"));
  // Unarmed points never fire.
  EXPECT_NO_THROW(grid::fault::check("net.write"));
  EXPECT_EQ(grid::fault::hitCount("net.read"), 2u);
}

TEST(FaultPlan, AfterGatePassesLeadingHits) {
  FaultGuard guard;
  grid::fault::armPlan("sched.dispatch:after=2:error");
  EXPECT_NO_THROW(grid::fault::check("sched.dispatch"));
  EXPECT_NO_THROW(grid::fault::check("sched.dispatch"));
  EXPECT_THROW(grid::fault::check("sched.dispatch"), grid::fault::Injected);
  EXPECT_NO_THROW(grid::fault::check("sched.dispatch"));  // count spent
  EXPECT_EQ(grid::fault::hitCount("sched.dispatch"), 4u);
}

TEST(FaultPlan, CountZeroFiresForever) {
  FaultGuard guard;
  grid::fault::armPlan("proto.decode:count=0:error");
  for (int k = 0; k < 5; ++k) {
    EXPECT_THROW(grid::fault::check("proto.decode"), grid::fault::Injected);
  }
}

TEST(FaultPlan, EpipeAndStallFlavors) {
  FaultGuard guard;
  grid::fault::armPlan("net.write:epipe;net.read:stall=20");
  try {
    grid::fault::check("net.write");
    FAIL() << "epipe rule did not fire";
  } catch (const grid::fault::Injected& e) {
    EXPECT_EQ(e.point(), "net.write");
  }
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_NO_THROW(grid::fault::check("net.read"));  // stalls, then proceeds
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 15);
}

TEST(FaultPlan, RejectsMalformedPlansWithoutArming) {
  FaultGuard guard;
  const char* bad[] = {
      "bogus.point:error",         // unknown point
      "net.read",                  // no action
      "net.read:torn",             // torn outside cache.journal
      "net.read:error:epipe",      // two actions
      "net.read:after=x:error",    // malformed number
      "net.read:error=1",          // action takes no value
      "net.read:stall",            // stall needs =MS
      "net.read:wat=1:error",      // unknown token
  };
  for (const char* plan : bad) {
    EXPECT_THROW(grid::fault::armPlan(plan), std::invalid_argument)
        << "plan not rejected: " << plan;
    EXPECT_FALSE(grid::fault::anyArmed()) << "bad plan armed: " << plan;
  }
  // Empty plan (and ";;;") disarms rather than erroring.
  grid::fault::armPlan("net.read:error");
  grid::fault::armPlan("");
  EXPECT_FALSE(grid::fault::anyArmed());
  EXPECT_EQ(grid::fault::planText(), "");
}

TEST(FaultPlan, TornLimitOnlyAnswersTornRules) {
  FaultGuard guard;
  grid::fault::armPlan("cache.journal:torn=7");
  const auto limit = grid::fault::tornLimit("cache.journal", 100);
  ASSERT_TRUE(limit.has_value());
  EXPECT_EQ(*limit, 7u);
  // Spent after one firing; and check() never fires torn rules.
  EXPECT_FALSE(grid::fault::tornLimit("cache.journal", 100).has_value());
  grid::fault::armPlan("cache.journal:torn");
  EXPECT_NO_THROW(grid::fault::check("cache.journal"));
  const auto half = grid::fault::tornLimit("cache.journal", 100);
  ASSERT_TRUE(half.has_value());
  EXPECT_EQ(*half, 50u);  // default: half the record
}

// ----------------------------------------------------------- net deadlines

TEST(NetDeadline, ReadTimesOutOnSilentPeer) {
  SocketPair sp;
  char byte;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(grid::net::readExact(sp.a.get(), &byte, 1, 100),
               grid::net::TimeoutError);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 90);
  EXPECT_LT(elapsed.count(), 5000);
}

TEST(NetDeadline, WriteTimesOutWhenPeerStopsDraining) {
  SocketPair sp;
  // Nobody reads sp.b, so the kernel buffer fills and the whole-operation
  // deadline must fire instead of wedging the writer.
  const std::string big(8u << 20, 'x');
  EXPECT_THROW(
      grid::net::writeAll(sp.a.get(), big.data(), big.size(), 150),
      grid::net::TimeoutError);
}

TEST(NetDeadline, FrameReadTimesOutMidHeader) {
  SocketPair sp;
  // A valid header PREFIX then silence: the frame deadline covers the
  // whole header+payload, so a peer dribbling bytes cannot reset it.
  const char prefix[4] = {'P', 'G', 1, 1};
  grid::net::writeAll(sp.b.get(), prefix, sizeof(prefix));
  grid::Frame frame;
  EXPECT_THROW(grid::readFrame(sp.a.get(), frame, 150),
               grid::net::TimeoutError);
}

TEST(NetDeadline, BoundedReadStillDeliversPromptData) {
  SocketPair sp;
  const std::string msg = "hello";
  grid::net::writeAll(sp.b.get(), msg.data(), msg.size());
  std::string got(msg.size(), '\0');
  EXPECT_TRUE(
      grid::net::readExact(sp.a.get(), got.data(), got.size(), 1000));
  EXPECT_EQ(got, msg);
}

// ----------------------------------------------------------- cache store

TEST(CacheStore, RoundTripRecoversAppendOrder) {
  TempDir dir;
  {
    grid::CacheStore store(grid::CacheStore::Config{dir.path, 16});
    store.recover([](std::string, std::string) { FAIL(); });
    store.append("fp-one", "bytes one");
    store.append("fp-two", "bytes two");
    store.append("fp-one", "bytes one, newer");  // last-wins on replay
  }
  grid::RecoveryStats stats;
  const auto got = recoverAll(dir.path, &stats);
  EXPECT_EQ(stats.recovered, 3u);
  EXPECT_FALSE(stats.rewritten);
  EXPECT_EQ(stats.corruptSkipped, 0u);
  EXPECT_EQ(stats.tornBytes, 0u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got.at("fp-one"), "bytes one, newer");
  EXPECT_EQ(got.at("fp-two"), "bytes two");
}

TEST(CacheStore, EveryPrefixTruncationRecoversLongestValidPrefix) {
  TempDir dir;
  const std::string salt(grid::kCodeVersionSalt);
  const std::string r1 =
      grid::CacheStore::encodeRecord("fp-a", salt, "payload alpha");
  const std::string r2 =
      grid::CacheStore::encodeRecord("fp-b", salt, "payload beta");
  const std::string r3 =
      grid::CacheStore::encodeRecord("fp-c", salt, "payload gamma");
  const std::string full = r1 + r2 + r3;
  const std::size_t b1 = r1.size();
  const std::size_t b2 = r1.size() + r2.size();

  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    writeJournal(dir.path, full.substr(0, cut));
    grid::RecoveryStats stats;
    std::map<std::string, std::string> got;
    ASSERT_NO_THROW(got = recoverAll(dir.path, &stats))
        << "recovery crashed at cut " << cut;
    const std::size_t expect =
        cut >= full.size() ? 3u : (cut >= b2 ? 2u : (cut >= b1 ? 1u : 0u));
    EXPECT_EQ(got.size(), expect) << "at cut " << cut;
    EXPECT_EQ(stats.recovered, expect) << "at cut " << cut;
    const bool atBoundary =
        cut == 0 || cut == b1 || cut == b2 || cut == full.size();
    EXPECT_EQ(stats.rewritten, !atBoundary) << "at cut " << cut;
    if (!atBoundary) {
      // The rewrite already paid for the damage: a second scan of the
      // same directory must be clean.
      grid::RecoveryStats again;
      EXPECT_EQ(recoverAll(dir.path, &again).size(), expect)
          << "at cut " << cut;
      EXPECT_FALSE(again.rewritten) << "at cut " << cut;
    }
  }
}

TEST(CacheStore, BitFlipCostsExactlyOneRecord) {
  TempDir dir;
  const std::string salt(grid::kCodeVersionSalt);
  const std::string r1 =
      grid::CacheStore::encodeRecord("fp-a", salt, "payload alpha");
  const std::string r2 =
      grid::CacheStore::encodeRecord("fp-b", salt, "payload beta");
  const std::string r3 =
      grid::CacheStore::encodeRecord("fp-c", salt, "payload gamma");
  std::string bytes = r1 + r2 + r3;
  // Flip one bit inside record 2's payload: its checksum must reject it,
  // and the resync scan must carry on to record 3.
  bytes[r1.size() + r2.size() - 2] ^= 0x01;
  writeJournal(dir.path, bytes);

  grid::RecoveryStats stats;
  const auto got = recoverAll(dir.path, &stats);
  EXPECT_EQ(stats.recovered, 2u);
  EXPECT_GE(stats.corruptSkipped, 1u);
  EXPECT_TRUE(stats.rewritten);
  EXPECT_EQ(got.count("fp-a"), 1u);
  EXPECT_EQ(got.count("fp-b"), 0u);
  EXPECT_EQ(got.count("fp-c"), 1u);
}

TEST(CacheStore, StaleSaltRecordsAreDroppedNotReplayed) {
  TempDir dir;
  const std::string current(grid::kCodeVersionSalt);
  writeJournal(dir.path,
               grid::CacheStore::encodeRecord("fp-old", "stale-salt-0",
                                              "bytes from old code") +
                   grid::CacheStore::encodeRecord("fp-new", current,
                                                  "bytes from this code"));
  grid::RecoveryStats stats;
  const auto got = recoverAll(dir.path, &stats);
  EXPECT_EQ(stats.staleSalt, 1u);
  EXPECT_EQ(stats.recovered, 1u);
  EXPECT_TRUE(stats.rewritten);  // the stale record is purged on the spot
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got.at("fp-new"), "bytes from this code");
}

// ------------------------------------------------- persistent ResultCache

TEST(PersistentCache, WarmRestartServesIdenticalBytes) {
  TempDir dir;
  {
    grid::ResultCache cache(8, dir.path);
    EXPECT_TRUE(cache.persistent());
    EXPECT_EQ(cache.recoveredEntries(), 0u);
    cache.insert("fp-1", "result bytes one");
    cache.insert("fp-2", "result bytes two");
  }
  grid::ResultCache cache(8, dir.path);
  EXPECT_TRUE(cache.persistent());
  EXPECT_EQ(cache.recoveredEntries(), 2u);
  const auto one = cache.lookup("fp-1");
  const auto two = cache.lookup("fp-2");
  ASSERT_TRUE(one.has_value());
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ(*one, "result bytes one");
  EXPECT_EQ(*two, "result bytes two");
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(PersistentCache, ReloadObeysLruBoundExactly) {
  TempDir dir;
  {
    grid::ResultCache cache(2, dir.path);
    for (int k = 1; k <= 5; ++k) {
      cache.insert("fp-" + std::to_string(k), "v" + std::to_string(k));
    }
    EXPECT_EQ(cache.size(), 2u);
  }
  grid::ResultCache cache(2, dir.path);
  // Replay walks the journal oldest-first, so the bound evicts exactly
  // the oldest surplus — the reloaded cache equals the pre-crash one.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.recoveredEntries(), 2u);
  EXPECT_EQ(cache.recoveryStats().recovered, 5u);
  EXPECT_EQ(cache.evictions(), 3u);
  EXPECT_FALSE(cache.lookup("fp-1").has_value());
  EXPECT_FALSE(cache.lookup("fp-2").has_value());
  EXPECT_FALSE(cache.lookup("fp-3").has_value());
  ASSERT_TRUE(cache.lookup("fp-4").has_value());
  ASSERT_TRUE(cache.lookup("fp-5").has_value());
  EXPECT_EQ(*cache.lookup("fp-4"), "v4");
  EXPECT_EQ(*cache.lookup("fp-5"), "v5");
}

TEST(PersistentCache, TornWriteLosesPersistenceNeverTheJob) {
  FaultGuard guard;
  TempDir dir;
  {
    grid::ResultCache cache(8, dir.path);
    cache.insert("fp-intact", "landed before the tear");
    grid::fault::armPlan("cache.journal:torn");
    cache.insert("fp-torn", "half of me hits the disk");
    // The job still succeeded in memory; only persistence is gone.
    EXPECT_EQ(cache.persistFailures(), 1u);
    EXPECT_FALSE(cache.persistent());
    ASSERT_TRUE(cache.lookup("fp-torn").has_value());
    EXPECT_EQ(*cache.lookup("fp-torn"), "half of me hits the disk");
  }
  grid::fault::disarm();
  grid::ResultCache cache(8, dir.path);
  // The torn record is the journal's tail: dropped, journal rewritten.
  EXPECT_EQ(cache.recoveredEntries(), 1u);
  EXPECT_GT(cache.recoveryStats().tornBytes, 0u);
  EXPECT_TRUE(cache.recoveryStats().rewritten);
  ASSERT_TRUE(cache.lookup("fp-intact").has_value());
  EXPECT_FALSE(cache.lookup("fp-torn").has_value());
}

TEST(PersistentCache, UnreadableStoreDegradesToMemoryOnly) {
  FaultGuard guard;
  TempDir dir;
  grid::fault::armPlan("cache.load:error");
  grid::ResultCache cache(8, dir.path);
  EXPECT_FALSE(cache.persistent());
  EXPECT_EQ(cache.persistFailures(), 1u);
  cache.insert("fp", "still served");
  ASSERT_TRUE(cache.lookup("fp").has_value());
}

// ------------------------------------------------------ server robustness

TEST(GridServerRobustness, StalledConnectionDroppedWhileDaemonServes) {
  const TestGrid grid = makeTestGrid();
  InProcessServer fixture("", /*connTimeoutMs=*/250);
  {
    // A client that connects and goes silent — the concurrent server
    // keeps serving around it and must cut it loose on the deadline.
    grid::net::Fd silent = grid::net::connectTo(
        grid::net::parseEndpoint(fixture.endpoint()));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    grid::GridClient client(fixture.endpoint());
    const grid::JobResult result = client.submit(grid.whole, 4);
    EXPECT_EQ(result.accumulatorText, grid.singleBytes);

    // The event loop serves other clients without waiting on the stalled
    // connection, so the submit above can finish well before the 250 ms
    // deadline: hold the silent socket open until the drop is observed.
    for (int spins = 0;
         counterOf(fixture.server(), "grid.conn.timeout") == 0 &&
         spins < 200;
         ++spins)
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_GE(counterOf(fixture.server(), "grid.conn.timeout"), 1u);
  EXPECT_GE(counterOf(fixture.server(), "grid.conn.dropped"), 1u);
  fixture.stop();
}

TEST(GridServerRobustness, ClientDeadlineFiresOnMuteServer) {
  // A listener that never accepts: the connect succeeds (backlog), the
  // submit's reply never comes, and the client's own deadline must fire.
  const std::string path = uniqueSocketPath();
  const auto ep = grid::net::parseEndpoint("unix:" + path);
  grid::net::Fd listener = grid::net::listenOn(ep, 4, nullptr);

  ShardSpec spec;
  spec.platform = "inorder-lru";
  spec.workload = "bubblesort-8";
  spec.qEnd = 1;
  spec.iEnd = 1;
  grid::ClientOptions opts;
  opts.connectTimeoutMs = 1000;
  opts.ioTimeoutMs = 200;
  grid::GridClient client("unix:" + path, opts);
  EXPECT_THROW(client.submit(spec, 1), grid::net::TimeoutError);
  ::unlink(path.c_str());
}

TEST(GridServerRobustness, InjectedEpipeOnReplyDropsOnlyThatConnection) {
  FaultGuard guard;
  const TestGrid grid = makeTestGrid();
  InProcessServer fixture;
  {
    // Global net.write hits in this process: the client's Submit is hit
    // 0 (passed by after=1), the server's reply is hit 1 — which fires.
    grid::GridClient victim(fixture.endpoint());
    grid::fault::armPlan("net.write:after=1:epipe");
    EXPECT_THROW(victim.submit(grid.whole, 4), std::runtime_error);
    grid::fault::disarm();
  }
  {
    // The job itself completed server-side before the reply died, so the
    // next client gets a byte-identical CACHE hit — no recomputation.
    grid::GridClient client(fixture.endpoint());
    const grid::JobResult result = client.submit(grid.whole, 4);
    EXPECT_TRUE(result.cacheHit);
    EXPECT_EQ(result.accumulatorText, grid.singleBytes);
  }
  EXPECT_GE(counterOf(fixture.server(), "grid.conn.dropped"), 1u);
  fixture.stop();
}

// ------------------------------------------------ worker-attach handshake

/// Spins until `name` reaches at least `least` on the server's registry.
void awaitCounter(grid::GridServer& server, const std::string& name,
                  std::uint64_t least) {
  for (int spins = 0; spins < 200; ++spins) {
    if (counterOf(server, name) >= least) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  FAIL() << "counter " << name << " never reached " << least;
}

TEST(GridServerRobustness, GarbageWorkerHelloNeverWedgesTheEventLoop) {
  FaultGuard guard;
  const TestGrid grid = makeTestGrid();
  InProcessServer fixture;

  // A dial-in whose hello payload is garbage: Error reply (best effort),
  // connection dropped, daemon alive.
  {
    auto fd = grid::net::connectTo(
        grid::net::parseEndpoint(fixture.endpoint()));
    grid::writeFrame(fd.get(), grid::Frame{grid::FrameType::WorkerHello,
                                           "not a hello at all"});
    grid::Frame reply;
    try {
      if (grid::readFrame(fd.get(), reply, 5'000))
        EXPECT_EQ(reply.type, grid::FrameType::Error);
    } catch (const std::exception&) {
      // The server may close first; the next submit is the real check.
    }
  }

  // An injected fault inside the handshake itself (worker.attach) must
  // reject that dial-in the same way — never leak into the event loop.
  grid::fault::armPlan("worker.attach:error");
  {
    grid::WorkerHelloMsg hello;
    hello.salt = std::string(grid::kCodeVersionSalt);
    hello.concurrency = 1;
    auto fd = grid::net::connectTo(
        grid::net::parseEndpoint(fixture.endpoint()));
    grid::writeFrame(fd.get(),
                     grid::Frame{grid::FrameType::WorkerHello,
                                 grid::encodeWorkerHelloMsg(hello)});
    grid::Frame reply;
    try {
      if (grid::readFrame(fd.get(), reply, 5'000))
        EXPECT_EQ(reply.type, grid::FrameType::Error);
    } catch (const std::exception&) {
    }
  }
  grid::fault::disarm();

  grid::GridClient client(fixture.endpoint());
  EXPECT_EQ(client.submit(grid.whole, 3).accumulatorText, grid.singleBytes);
  EXPECT_GE(counterOf(fixture.server(), "grid.bad_frames"), 2u);
  EXPECT_EQ(counterOf(fixture.server(), "grid.worker.attached"), 0u);
  fixture.stop();
}

TEST(GridServerRobustness, WrongSaltAttachIsRejectedAndCounted) {
  const TestGrid grid = makeTestGrid();
  InProcessServer fixture;

  grid::AttachOptions opts;
  opts.salt = "stale-build-salt";
  try {
    grid::runAttachWorker(fixture.endpoint(), study::gridShardEvaluator(),
                          opts);
    FAIL() << "mismatched salt must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("salt mismatch"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(counterOf(fixture.server(), "grid.worker.rejected_salt"), 1u);
  EXPECT_EQ(counterOf(fixture.server(), "grid.worker.attached"), 0u);

  // A worker built from different code never got near the queue; jobs
  // still run on the fixed slots.
  grid::GridClient client(fixture.endpoint());
  EXPECT_EQ(client.submit(grid.whole, 3).accumulatorText, grid.singleBytes);
  fixture.stop();
}

TEST(GridServerRobustness, HalfOpenDialInIsDroppedOnDeadline) {
  const TestGrid grid = makeTestGrid();
  InProcessServer fixture("", /*connTimeoutMs=*/250, 64,
                          /*workerListen=*/true);
  {
    // Connects to the WORKER endpoint and never says hello — the shape a
    // crashed remote worker leaves behind.  The idle-connection deadline
    // must reap it while the daemon serves normally.
    grid::net::Fd halfOpen = grid::net::connectTo(
        grid::net::parseEndpoint(fixture.workerEndpoint()));

    grid::GridClient client(fixture.endpoint());
    EXPECT_EQ(client.submit(grid.whole, 3).accumulatorText,
              grid.singleBytes);
    awaitCounter(fixture.server(), "grid.conn.timeout", 1);
  }
  EXPECT_GE(counterOf(fixture.server(), "grid.conn.dropped"), 1u);
  EXPECT_EQ(counterOf(fixture.server(), "grid.worker.attached"), 0u);
  fixture.stop();
}

TEST(GridServerRobustness, InjectedWorkerFrameFaultKillsChannelNotJob) {
  FaultGuard guard;
  const TestGrid grid = makeTestGrid();
  InProcessServer fixture;

  // A healthy attached worker whose server-side frame write is about to
  // fail (worker.frame models EPIPE/RST on the worker socket): the
  // channel dies, the lease requeues onto the fixed slots, the job ends
  // byte-identical.
  std::thread worker([&] {
    try {
      grid::runAttachWorker(fixture.endpoint(),
                            study::gridShardEvaluator(), {});
    } catch (const std::exception& e) {
      ADD_FAILURE() << "attach worker: " << e.what();
    }
  });
  awaitCounter(fixture.server(), "grid.worker.attached", 1);

  grid::fault::armPlan("worker.frame:error");
  grid::GridClient client(fixture.endpoint());
  const grid::JobResult result = client.submit(grid.whole, 8);
  EXPECT_EQ(result.accumulatorText, grid.singleBytes);
  grid::fault::disarm();

  worker.join();  // the dead channel's socket closed: clean EOF exit
  EXPECT_GE(counterOf(fixture.server(), "grid.worker.deaths"), 1u);
  fixture.stop();
}

TEST(GridServerRobustness, RestartWithCacheDirServesHitFromDisk) {
  const TestGrid grid = makeTestGrid();
  TempDir dir;
  {
    InProcessServer first(dir.path);
    grid::GridClient client(first.endpoint());
    const grid::JobResult cold = client.submit(grid.whole, 4);
    EXPECT_FALSE(cold.cacheHit);
    EXPECT_EQ(cold.accumulatorText, grid.singleBytes);
  }  // server gone; only the journal under dir survives
  InProcessServer second(dir.path);
  EXPECT_EQ(counterOf(second.server(), "grid.cache.recovered"), 1u);
  {
    grid::GridClient client(second.endpoint());
    const grid::JobResult warm = client.submit(grid.whole, 4);
    EXPECT_TRUE(warm.cacheHit);
    EXPECT_EQ(warm.accumulatorText, grid.singleBytes);
    const obs::RunReport report = client.stats();
    EXPECT_EQ(report.counters.at("grid.cache.recovered"), 1u);
    EXPECT_EQ(report.counters.at("grid.cache.persist_errors"), 0u);
  }
  second.stop();
}

}  // namespace
}  // namespace pred
