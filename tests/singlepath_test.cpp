// singlepath_test.cpp — The single-path code generator (Puschner & Burns
// [19]): differential functional equivalence against the branchy compiler,
// and the defining property — the dynamic instruction trace (hence, on
// constant-latency hardware, the execution time) is input-independent.

#include <gtest/gtest.h>

#include "isa/ast.h"
#include "isa/exec.h"
#include "isa/singlepath.h"
#include "isa/workloads.h"

namespace pred::isa::ast {
namespace {

std::int64_t readVar(const Program& p, const MachineState& st,
                     const std::string& name) {
  return st.mem[static_cast<std::size_t>(p.variables.at(name))];
}

/// Maps a named input onto both compilations (addresses may differ).
Input forProgram(const Program& p, const std::string& var, std::int64_t v) {
  return varInput(p, var, v);
}

std::vector<std::int32_t> pcSequence(const Trace& t) {
  std::vector<std::int32_t> pcs;
  pcs.reserve(t.size());
  for (const auto& rec : t) pcs.push_back(rec.pc);
  return pcs;
}

TEST(SinglePath, IfElseEquivalence) {
  AstProgram a;
  a.scalars = {"x", "r"};
  a.main = ifElse(lt(var("x"), constant(10)), assign("r", constant(1)),
                  assign("r", constant(2)));
  const auto pb = compileBranchy(a);
  const auto ps = compileSinglePath(a);
  for (std::int64_t x : {-5, 0, 5, 9, 10, 11, 100}) {
    auto rb = FunctionalCore::run(pb, forProgram(pb, "x", x));
    auto rs = FunctionalCore::run(ps, forProgram(ps, "x", x));
    ASSERT_TRUE(rb.completed && rs.completed);
    EXPECT_EQ(readVar(pb, rb.finalState, "r"), readVar(ps, rs.finalState, "r"))
        << "x=" << x;
  }
}

TEST(SinglePath, IfElseTraceIsInputIndependent) {
  AstProgram a;
  a.scalars = {"x", "r"};
  a.main = ifElse(lt(var("x"), constant(10)), assign("r", constant(1)),
                  assign("r", constant(2)));
  const auto ps = compileSinglePath(a);
  auto ref = FunctionalCore::run(ps, forProgram(ps, "x", 0));
  for (std::int64_t x : {-100, 3, 9, 10, 55}) {
    auto r = FunctionalCore::run(ps, forProgram(ps, "x", x));
    EXPECT_EQ(pcSequence(ref.trace), pcSequence(r.trace)) << "x=" << x;
  }
}

TEST(SinglePath, NestedIfEquivalence) {
  AstProgram a = workloads::branchTree(4);
  const auto pb = compileBranchy(a);
  const auto ps = compileSinglePath(a);
  for (std::int64_t x0 : {0, 10}) {
    for (std::int64_t x1 : {0, 10}) {
      for (std::int64_t x2 : {0, 10}) {
        for (std::int64_t x3 : {0, 10}) {
          Input ib = mergeInputs(
              mergeInputs(forProgram(pb, "x0", x0), forProgram(pb, "x1", x1)),
              mergeInputs(forProgram(pb, "x2", x2), forProgram(pb, "x3", x3)));
          Input is = mergeInputs(
              mergeInputs(forProgram(ps, "x0", x0), forProgram(ps, "x1", x1)),
              mergeInputs(forProgram(ps, "x2", x2), forProgram(ps, "x3", x3)));
          auto rb = FunctionalCore::run(pb, ib);
          auto rs = FunctionalCore::run(ps, is);
          EXPECT_EQ(readVar(pb, rb.finalState, "cls"),
                    readVar(ps, rs.finalState, "cls"));
        }
      }
    }
  }
}

TEST(SinglePath, WhileLoopEquivalenceAndConstantTrace) {
  AstProgram a;
  a.scalars = {"i", "n"};
  a.main = seq({
      assign("i", constant(0)),
      whileLoop(lt(var("i"), var("n")),
                assign("i", add(var("i"), constant(1))), 12),
  });
  const auto pb = compileBranchy(a);
  const auto ps = compileSinglePath(a);
  std::size_t refLen = 0;
  for (std::int64_t n : {0, 1, 5, 12}) {
    auto rb = FunctionalCore::run(pb, forProgram(pb, "n", n));
    auto rs = FunctionalCore::run(ps, forProgram(ps, "n", n));
    EXPECT_EQ(readVar(pb, rb.finalState, "i"), readVar(ps, rs.finalState, "i"))
        << "n=" << n;
    if (refLen == 0) {
      refLen = rs.trace.size();
    } else {
      EXPECT_EQ(rs.trace.size(), refLen) << "n=" << n;  // constant trip count
    }
  }
}

TEST(SinglePath, ArrayAssignUnderFalsePredicateIsNoOp) {
  AstProgram a;
  a.scalars = {"x"};
  a.arrays["v"] = 4;
  a.main = ifElse(eq(var("x"), constant(1)),
                  arrayAssign("v", constant(2), constant(99)));
  const auto ps = compileSinglePath(a);
  auto r = FunctionalCore::run(ps, forProgram(ps, "x", 0));
  const auto base = static_cast<std::size_t>(ps.variables.at("v"));
  EXPECT_EQ(r.finalState.mem[base + 2], 0);  // not written
  auto r1 = FunctionalCore::run(ps, forProgram(ps, "x", 1));
  EXPECT_EQ(r1.finalState.mem[base + 2], 99);
  // Same trace length either way (the store always executes).
  EXPECT_EQ(r.trace.size(), r1.trace.size());
}

TEST(SinglePath, FunctionsReceiveCallerPredicate) {
  AstProgram a;
  a.scalars = {"x", "acc"};
  a.functions.push_back(
      FunctionDecl{"bump", assign("acc", add(var("acc"), constant(1)))});
  a.main = ifElse(eq(var("x"), constant(1)), callFn("bump"));
  const auto ps = compileSinglePath(a);
  auto r0 = FunctionalCore::run(ps, forProgram(ps, "x", 0));
  auto r1 = FunctionalCore::run(ps, forProgram(ps, "x", 1));
  EXPECT_EQ(readVar(ps, r0.finalState, "acc"), 0);  // predicate false
  EXPECT_EQ(readVar(ps, r1.finalState, "acc"), 1);
  // The call itself always executes: identical pc sequences.
  EXPECT_EQ(pcSequence(r0.trace), pcSequence(r1.trace));
}

// ---------------------------------------------------------------------------
// Parameterized differential sweep over whole workloads: for every input,
// branchy and single-path compute identical results, and the single-path pc
// trace never varies.
// ---------------------------------------------------------------------------

struct WorkloadCase {
  std::string name;
  AstProgram ast;
  std::string arrayName;      // array to randomize ("" = none)
  std::int64_t arrayLen = 0;
  std::vector<std::string> observables;
};

class SinglePathDifferential : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(SinglePathDifferential, EquivalentAndInputInvariant) {
  const auto& wc = GetParam();
  const auto pb = compileBranchy(wc.ast);
  const auto ps = compileSinglePath(wc.ast);

  std::vector<Input> inputsB{Input{}};
  std::vector<Input> inputsS{Input{}};
  if (!wc.arrayName.empty()) {
    inputsB = workloads::randomArrayInputs(pb, wc.arrayName, wc.arrayLen, 6,
                                           2024, 32);
    inputsS = workloads::randomArrayInputs(ps, wc.arrayName, wc.arrayLen, 6,
                                           2024, 32);
  }

  std::vector<std::int32_t> refPcs;
  for (std::size_t k = 0; k < inputsB.size(); ++k) {
    auto rb = FunctionalCore::run(pb, inputsB[k]);
    auto rs = FunctionalCore::run(ps, inputsS[k]);
    ASSERT_TRUE(rb.completed && rs.completed);
    for (const auto& obs : wc.observables) {
      EXPECT_EQ(readVar(pb, rb.finalState, obs),
                readVar(ps, rs.finalState, obs))
          << wc.name << " input " << k << " var " << obs;
    }
    const auto pcs = pcSequence(rs.trace);
    if (refPcs.empty()) {
      refPcs = pcs;
    } else {
      EXPECT_EQ(pcs, refPcs) << wc.name << ": single-path trace varies";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SinglePathDifferential,
    ::testing::Values(
        WorkloadCase{"sumLoop", workloads::sumLoop(8), "a", 8, {"s"}},
        WorkloadCase{"linearSearch", workloads::linearSearch(8), "a", 8,
                     {"i", "found"}},
        WorkloadCase{"bubbleSort", workloads::bubbleSort(6), "a", 6, {}}),
    [](const ::testing::TestParamInfo<WorkloadCase>& info) {
      return info.param.name;
    });

// Sorted-output check for bubbleSort under the sweep (separate, since the
// observable is the array).
TEST(SinglePath, BubbleSortSortsEveryInput) {
  const auto a = workloads::bubbleSort(5);
  const auto ps = compileSinglePath(a);
  const auto inputs = workloads::randomArrayInputs(ps, "a", 5, 8, 7, 32);
  const auto base = ps.variables.at("a");
  for (const auto& in : inputs) {
    auto r = FunctionalCore::run(ps, in);
    ASSERT_TRUE(r.completed);
    for (int i = 0; i + 1 < 5; ++i) {
      EXPECT_LE(r.finalState.mem[static_cast<std::size_t>(base + i)],
                r.finalState.mem[static_cast<std::size_t>(base + i + 1)]);
    }
  }
}

}  // namespace
}  // namespace pred::isa::ast
