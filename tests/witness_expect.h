#pragma once
// witness_expect.h — Shared field-for-field comparator for
// core::PredictabilityValue, used by every suite that asserts two
// evaluation paths agree value- AND witness-for-witness (replay, scenario
// batching, and the differential harness).  One definition so a new
// witness field added to PredictabilityValue tightens every bit-identity
// guarantee at once.
//
// Not a test binary: CMake only globs tests/*.cpp.

#include <gtest/gtest.h>

#include <string>

#include "core/definitions.h"

namespace pred {

inline void expectSamePredictabilityValue(const core::PredictabilityValue& a,
                                          const core::PredictabilityValue& b,
                                          const std::string& label = "") {
  EXPECT_EQ(a.value, b.value) << label;
  EXPECT_EQ(a.minTime, b.minTime) << label;
  EXPECT_EQ(a.maxTime, b.maxTime) << label;
  EXPECT_EQ(a.q1, b.q1) << label;
  EXPECT_EQ(a.i1, b.i1) << label;
  EXPECT_EQ(a.q2, b.q2) << label;
  EXPECT_EQ(a.i2, b.i2) << label;
  EXPECT_EQ(a.provenance, b.provenance) << label;
}

}  // namespace pred
