// pipeline_test.cpp — In-order, out-of-order (incl. preschedule mode),
// virtual-trace, PRET and SMT timing models.

#include <gtest/gtest.h>

#include "branch/dynamic.h"
#include "core/measures.h"
#include "isa/ast.h"
#include "isa/builder.h"
#include "isa/cfg.h"
#include "isa/exec.h"
#include "isa/workloads.h"
#include "pipeline/inorder.h"
#include "pipeline/memory_iface.h"
#include "pipeline/ooo.h"
#include "pipeline/pret.h"
#include "pipeline/smt.h"
#include "pipeline/vtrace.h"

namespace pred::pipeline {
namespace {

isa::Trace traceOf(const isa::Program& p, const isa::Input& in = {}) {
  auto r = isa::FunctionalCore::run(p, in);
  EXPECT_TRUE(r.completed);
  return r.trace;
}

TEST(InOrder, AdditiveCycleModel) {
  isa::ProgramBuilder b;
  b.li(1, 5).li(2, 3).add(3, 1, 2).mul(4, 1, 2).halt();
  const auto t = traceOf(b.build());
  FixedLatencyMemory mem(2);
  InOrderConfig cfg;
  InOrderPipeline pipe(cfg, &mem);
  // 3 singles + 1 mul(4) + halt(1) = 3 + 4 + 1.
  EXPECT_EQ(pipe.run(t), 3 * cfg.aluLatency + cfg.mulLatency + 1);
}

TEST(InOrder, MemoryLatencyFromCache) {
  isa::ProgramBuilder b;
  b.ld(1, 0, 5).ld(2, 0, 5).halt();
  const auto t = traceOf(b.build());
  cache::SetAssocCache c(cache::CacheGeometry{4, 4, 2}, cache::Policy::LRU,
                         cache::CacheTiming{1, 10});
  CachedMemory mem(c);
  InOrderConfig cfg;
  InOrderPipeline pipe(cfg, &mem);
  // ld miss (1+10) + ld hit (1+1) + halt 1.
  EXPECT_EQ(pipe.run(t), 14u);
}

TEST(InOrder, TakenBranchPenalty) {
  isa::ProgramBuilder b;
  b.li(1, 1);
  b.beq(1, 1, "t");
  b.label("t");
  b.halt();
  const auto t = traceOf(b.build());
  FixedLatencyMemory mem(1);
  InOrderConfig cfg;
  cfg.takenPenalty = 5;
  InOrderPipeline pipe(cfg, &mem);
  EXPECT_EQ(pipe.run(t), 1 + (cfg.controlLatency + 5) + 1);
}

TEST(InOrder, MispredictPenaltyWithPredictor) {
  isa::ProgramBuilder b;
  b.li(1, 1);
  b.beq(1, 1, "t");  // taken
  b.label("t");
  b.halt();
  const auto t = traceOf(b.build());
  FixedLatencyMemory mem(1);
  InOrderConfig cfg;
  cfg.mispredictPenalty = 7;
  branch::BimodalPredictor strongNot(8, 0);  // predicts not-taken: mispredict
  InOrderPipeline pipe(cfg, &mem, &strongNot);
  EXPECT_EQ(pipe.run(t), 1 + (cfg.controlLatency + 7) + 1);
  EXPECT_EQ(pipe.mispredictions(), 1u);
}

TEST(InOrder, ConstantDivRemovesInputVariability) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::divKernel(4));
  isa::Input a = isa::varInput(prog, "x", 0);
  isa::Input b = isa::varInput(prog, "x", 0);
  const auto base = prog.variables.at("a");
  for (int i = 0; i < 4; ++i) {
    a.mem[base + i] = 1;
    b.mem[base + i] = 1'000'000'000;
  }
  FixedLatencyMemory mem(1);
  InOrderConfig varCfg;
  InOrderPipeline varPipe(varCfg, &mem);
  EXPECT_NE(varPipe.run(traceOf(prog, a)), varPipe.run(traceOf(prog, b)));

  InOrderConfig constCfg;
  constCfg.constantDiv = true;
  InOrderPipeline constPipe(constCfg, &mem);
  EXPECT_EQ(constPipe.run(traceOf(prog, a)), constPipe.run(traceOf(prog, b)));
}

TEST(Ooo, DependentChainSerializes) {
  isa::ProgramBuilder b;
  b.mul(1, 1, 2).mul(3, 1, 2).halt();  // RAW on r1
  const auto t = traceOf(b.build());
  FixedLatencyMemory mem(2);
  OooConfig cfg;
  cfg.mulLatency = 4;
  OooPipeline pipe(cfg, &mem);
  const auto serial = pipe.run(t);
  isa::ProgramBuilder b2;
  b2.mul(1, 1, 2).mul(3, 4, 2).halt();  // independent, but same unit (IU0)
  const auto t2 = traceOf(b2.build());
  const auto sameUnit = pipe.run(t2);
  EXPECT_EQ(serial, sameUnit);  // IU0 is the bottleneck either way
  isa::ProgramBuilder b3;
  b3.mul(1, 1, 2).add(3, 4, 5).halt();  // ADD can go to IU1 in parallel
  const auto t3 = traceOf(b3.build());
  EXPECT_LT(pipe.run(t3), serial);
}

TEST(Ooo, DrainModeMakesBlockTimesStateIndependent) {
  // Rochange & Sainrat's preschedule mode [21]: with drain at block
  // boundaries, execution time is the same from any initial occupancy.
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(8));
  isa::Cfg cfg(prog);
  std::set<std::int32_t> leaders;
  for (const auto& bb : cfg.blocks()) leaders.insert(bb.begin);
  const auto t = traceOf(prog);

  FixedLatencyMemory mem(2);
  OooPipeline pipe(OooConfig{}, &mem);
  std::set<Cycles> drained, free;
  for (Cycles a = 0; a <= 4; ++a) {
    for (Cycles b2 = 0; b2 <= 4; b2 += 2) {
      const OooInitialState q{a, b2, 0};
      drained.insert(pipe.run(t, q, &leaders));
      free.insert(pipe.run(t, q, nullptr));
    }
  }
  EXPECT_EQ(drained.size(), 1u);  // variability eliminated
  EXPECT_GE(free.size(), 1u);
}

TEST(Ooo, DrainCostsThroughput) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(8));
  isa::Cfg cfg(prog);
  std::set<std::int32_t> leaders;
  for (const auto& bb : cfg.blocks()) leaders.insert(bb.begin);
  const auto t = traceOf(prog);
  FixedLatencyMemory mem(2);
  OooPipeline pipe(OooConfig{}, &mem);
  EXPECT_GE(pipe.run(t, {}, &leaders), pipe.run(t, {}, nullptr));
}

TEST(VTrace, StateIndependentByConstruction) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::bubbleSort(5));
  isa::Cfg cfg(prog);
  VirtualTracePipeline vt(VirtualTraceConfig{},
                          computeTraceBoundaries(cfg, 16));
  const auto inputs =
      isa::workloads::randomArrayInputs(prog, "a", 5, 3, 5, 16);
  for (const auto& in : inputs) {
    const auto t = traceOf(prog, in);
    // No hardware state parameter exists; the time is a pure path function:
    EXPECT_EQ(vt.run(t), vt.run(t));
  }
}

TEST(VTrace, BoundariesAtLoopHeadersAndFunctions) {
  const auto prog =
      isa::ast::compileBranchy(isa::workloads::callRoundRobin(2, 2, 2));
  isa::Cfg cfg(prog);
  const auto bounds = computeTraceBoundaries(cfg, 16);
  EXPECT_TRUE(bounds.count(0));
  for (const auto& f : prog.functions) {
    EXPECT_TRUE(bounds.count(f.entry)) << f.name;
  }
  for (const auto& loop : cfg.loops()) {
    EXPECT_TRUE(bounds.count(cfg.block(loop.header).begin));
  }
}

TEST(VTrace, ConstantDivInsideTraces) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::divKernel(4));
  isa::Cfg cfg(prog);
  VirtualTracePipeline vt(VirtualTraceConfig{},
                          computeTraceBoundaries(cfg, 16));
  isa::Input a = isa::varInput(prog, "x", 0);
  isa::Input b = isa::varInput(prog, "x", 0);
  const auto base = prog.variables.at("a");
  for (int i = 0; i < 4; ++i) {
    a.mem[base + i] = 1;
    b.mem[base + i] = 1'000'000'000;
  }
  // Same path, different DIV operands: virtual traces force constant
  // duration, so times match.
  EXPECT_EQ(vt.run(traceOf(prog, a)), vt.run(traceOf(prog, b)));
}

TEST(Pret, ThreadTimeClosedForm) {
  isa::ProgramBuilder b;
  b.li(1, 1).addi(1, 1, 1).mul(2, 1, 1).halt();
  const auto t = traceOf(b.build());
  PretPipeline pret(PretConfig{4});
  // 4 instructions in slots 0, 4, 8, 12; finish = 13 for slot 0.
  EXPECT_EQ(pret.threadTime(t, 0), 13u);
  EXPECT_EQ(pret.threadTime(t, 1), 14u);
}

TEST(Pret, CompletionIndependentOfCoRunners) {
  const auto p1 = isa::ast::compileBranchy(isa::workloads::sumLoop(6));
  const auto p2 = isa::ast::compileBranchy(isa::workloads::matMul(2));
  const auto t1 = traceOf(p1);
  const auto t2 = traceOf(p2);
  PretPipeline pret(PretConfig{4});
  const auto alone = pret.run({&t1, nullptr, nullptr, nullptr});
  const auto loaded = pret.run({&t1, &t2, &t2, &t2});
  EXPECT_EQ(alone[0], loaded[0]);  // PRET composability
}

TEST(Pret, DeadlineStretchesTiming) {
  isa::ProgramBuilder b;
  b.deadline(40).li(1, 1).halt();
  const auto t = traceOf(b.build());
  PretPipeline pret(PretConfig{4});
  EXPECT_GE(pret.threadTime(t, 0), 40u);

  isa::ProgramBuilder b2;
  b2.deadline(0).li(1, 1).halt();
  EXPECT_LT(pret.threadTime(traceOf(b2.build()), 0), 40u);
}

TEST(Pret, DeadlineGivesRepeatableTiming) {
  // Two variants doing different amounts of work before the deadline
  // complete at the same deadline-aligned cycle: the PRET "control over
  // timing at the program level".
  isa::ProgramBuilder fast;
  fast.li(1, 1).deadline(32).halt();
  isa::ProgramBuilder slow;
  slow.li(1, 1).addi(1, 1, 1).addi(1, 1, 2).addi(1, 1, 3).deadline(32).halt();
  PretPipeline pret(PretConfig{4});
  const auto tf = pret.threadTime(traceOf(fast.build()), 0);
  const auto ts = pret.threadTime(traceOf(slow.build()), 0);
  EXPECT_EQ(tf, ts);
}

TEST(Smt, RtPriorityGivesZeroInterference) {
  const auto rt = isa::ast::compileBranchy(isa::workloads::sumLoop(8));
  const auto bg = isa::ast::compileBranchy(isa::workloads::matMul(3));
  const auto tRt = traceOf(rt);
  const auto tBg = traceOf(bg);
  SmtConfig cfg;
  cfg.policy = SmtPolicy::RtPriority;
  SmtPipeline smt(cfg);
  const auto solo = smt.run({&tRt});
  const auto ctx1 = smt.run({&tRt, &tBg});
  const auto ctx2 = smt.run({&tRt, &tBg, &tBg, &tBg});
  EXPECT_EQ(solo[0], ctx1[0]);
  EXPECT_EQ(solo[0], ctx2[0]);
}

TEST(Smt, RoundRobinInterferes) {
  const auto rt = isa::ast::compileBranchy(isa::workloads::sumLoop(8));
  const auto bg = isa::ast::compileBranchy(isa::workloads::matMul(3));
  const auto tRt = traceOf(rt);
  const auto tBg = traceOf(bg);
  SmtConfig cfg;
  cfg.policy = SmtPolicy::RoundRobin;
  SmtPipeline smt(cfg);
  const auto solo = smt.run({&tRt});
  const auto loaded = smt.run({&tRt, &tBg, &tBg, &tBg});
  EXPECT_GT(loaded[0], solo[0]);  // RT thread slowed by co-runners
}

TEST(Smt, BackgroundThreadsStillProgressUnderPriority) {
  const auto rt = isa::ast::compileBranchy(isa::workloads::sumLoop(4));
  const auto bg = isa::ast::compileBranchy(isa::workloads::sumLoop(4));
  const auto tRt = traceOf(rt);
  const auto tBg = traceOf(bg);
  SmtConfig cfg;
  cfg.policy = SmtPolicy::RtPriority;
  SmtPipeline smt(cfg);
  const auto done = smt.run({&tRt, &tBg});
  EXPECT_GT(done[1], 0u);  // finished eventually
}

TEST(Smt, PolicyNames) {
  EXPECT_EQ(toString(SmtPolicy::RoundRobin), "round-robin");
  EXPECT_EQ(toString(SmtPolicy::RtPriority), "rt-priority");
}

}  // namespace
}  // namespace pred::pipeline
