// scenario_test.cpp — Scenario grids: cross-product enumeration, agreement
// with direct engine computation, result sinks, and cross-platform trace
// sharing through the engine's store.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "study/scenario.h"
#include "witness_expect.h"
#include "isa/ast.h"
#include "isa/workloads.h"

namespace pred::study {
namespace {

ScenarioSuite smallSuite() {
  ScenarioSuite suite;
  {
    const auto prog = isa::ast::compileBranchy(isa::workloads::linearSearch(6));
    auto inputs = isa::workloads::randomArrayInputs(prog, "a", 6, 4, 5);
    for (auto& in : inputs) {
      in = isa::mergeInputs(in, isa::varInput(prog, "key", 1));
    }
    suite.addWorkload("linearSearch", prog, inputs);
  }
  {
    const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(8));
    suite.addWorkload("sumLoop", prog, {isa::Input{}});
  }
  exp::PlatformOptions opts;
  opts.numStates = 4;
  suite.addPlatform("inorder-lru", opts);
  suite.addPlatform("inorder-scratchpad", opts);
  suite.addPlatform("pret", opts);
  return suite;
}

TEST(ScenarioSuite, RunsTheFullCrossProductInDeclarationOrder) {
  const auto suite = smallSuite();
  EXPECT_EQ(suite.numScenarios(), 6u);
  exp::ExperimentEngine engine;
  const auto results = suite.run(engine);
  ASSERT_EQ(results.size(), 6u);
  EXPECT_EQ(results[0].workload, "linearSearch");
  EXPECT_EQ(results[0].platform, "inorder-lru");
  EXPECT_EQ(results[1].platform, "inorder-scratchpad");
  EXPECT_EQ(results[3].workload, "sumLoop");
  for (const auto& r : results) {
    EXPECT_GE(r.numStates, 1u);
    EXPECT_GE(r.numInputs, 1u);
    EXPECT_LE(r.bcet, r.wcet);
    EXPECT_GT(r.pr.value, 0.0);
    EXPECT_LE(r.pr.value, 1.0);
    // Def. 3 quantifies over more pairs than Defs. 4/5, so Pr <= both.
    EXPECT_LE(r.pr.value, r.sipr.value + 1e-12);
    EXPECT_LE(r.pr.value, r.iipr.value + 1e-12);
  }
}

TEST(ScenarioSuite, ResultsMatchDirectEngineComputation) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::linearSearch(6));
  auto inputs = isa::workloads::randomArrayInputs(prog, "a", 6, 4, 5);
  for (auto& in : inputs) {
    in = isa::mergeInputs(in, isa::varInput(prog, "key", 1));
  }
  exp::PlatformOptions opts;
  opts.numStates = 4;

  ScenarioSuite suite;
  suite.addWorkload("w", prog, inputs);
  suite.addPlatform("inorder-fifo", opts);
  suite.keepMatrices(true);
  exp::ExperimentEngine engine;
  const auto results = suite.run(engine);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].matrix.has_value());

  const auto model =
      exp::PlatformRegistry::instance().make("inorder-fifo", prog, opts);
  exp::ExperimentEngine direct;
  EXPECT_TRUE(*results[0].matrix ==
              direct.computeMatrix(*model, prog, inputs));
}

TEST(ScenarioSuite, MatricesAreDroppedByDefault) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(4));
  ScenarioSuite suite;
  suite.addWorkload("w", prog, {isa::Input{}});
  exp::PlatformOptions opts;
  opts.numStates = 2;
  suite.addPlatform("inorder-lru", opts);
  exp::ExperimentEngine engine;
  const auto results = suite.run(engine);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].matrix.has_value());
}

TEST(ScenarioSuite, RegistryWorkloadsRunByName) {
  ScenarioSuite suite;
  suite.addWorkload("sum-16");
  EXPECT_THROW(suite.addWorkload("not-a-workload"), std::invalid_argument);
  exp::PlatformOptions opts;
  opts.numStates = 2;
  suite.addPlatform("inorder-scratchpad", opts);
  exp::ExperimentEngine engine;
  const auto results = suite.run(engine);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].workload, "sum-16");
  EXPECT_EQ(results[0].sipr.value, 1.0);  // scratchpad: |Q| = 1
}

TEST(ScenarioSuite, UnknownPlatformIsRejectedAtDeclarationTime) {
  ScenarioSuite suite;
  EXPECT_THROW(suite.addPlatform("not-a-platform"), std::invalid_argument);
}

TEST(ScenarioSuite, SharesTracesAcrossPlatforms) {
  const auto suite = smallSuite();  // 2 workloads x 3 platforms
  exp::ExperimentEngine engine;
  suite.run(engine);
  // 4 + 1 inputs, each traced exactly once despite 3 platforms replaying it.
  EXPECT_EQ(engine.traceStore().misses(), 5u);
  EXPECT_EQ(engine.traceStore().hits(), 10u);
}

TEST(ScenarioSuite, CsvHasHeaderAndOneLinePerScenario) {
  const auto suite = smallSuite();
  exp::ExperimentEngine engine;
  const auto results = suite.run(engine);
  const auto csv = ScenarioSuite::csv(results);
  std::istringstream lines(csv);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line,
            "workload,platform,num_states,num_inputs,bcet,wcet,pr,sipr,iipr,"
            "mode,lb,ub");
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, results.size());
}

TEST(ScenarioSuite, SinksEscapeHostileWorkloadNames) {
  ScenarioSuite suite;
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(4));
  suite.addWorkload("search, \"warm\"", prog, {isa::Input{}});
  exp::PlatformOptions opts;
  opts.numStates = 1;
  suite.addPlatform("inorder-scratchpad", opts);
  exp::ExperimentEngine engine;
  const auto results = suite.run(engine);

  const auto csv = ScenarioSuite::csv(results);
  EXPECT_NE(csv.find("\"search, \"\"warm\"\"\",inorder-scratchpad"),
            std::string::npos);
  const auto json = ScenarioSuite::json(results);
  EXPECT_NE(json.find("\"workload\": \"search, \\\"warm\\\"\""),
            std::string::npos);
}

// ------------------------------------------------- batched single-pass run

/// Field-for-field identity of a batched finding with its sequential twin:
/// values, witnesses, AND provenance (names, labels, mode, requested set).
void expectSameFinding(const ScenarioResult& b, const ScenarioResult& s) {
  const std::string label = s.workload + "/" + s.platform;
  EXPECT_EQ(b.workload, s.workload) << label;
  EXPECT_EQ(b.platform, s.platform) << label;
  EXPECT_EQ(b.numStates, s.numStates) << label;
  EXPECT_EQ(b.numInputs, s.numInputs) << label;
  EXPECT_EQ(b.bcet, s.bcet) << label;
  EXPECT_EQ(b.wcet, s.wcet) << label;
  EXPECT_EQ(b.mode, s.mode) << label;
  EXPECT_EQ(b.provenance, s.provenance) << label;
  EXPECT_EQ(b.requested, s.requested) << label;
  EXPECT_EQ(b.stateLabels, s.stateLabels) << label;
  expectSamePredictabilityValue(b.pr, s.pr, label + "/Pr");
  expectSamePredictabilityValue(b.sipr, s.sipr, label + "/SIPr");
  expectSamePredictabilityValue(b.iipr, s.iipr, label + "/IIPr");
  EXPECT_EQ(b.matrix.has_value(), s.matrix.has_value()) << label;
  EXPECT_EQ(b.bounds.has_value(), s.bounds.has_value()) << label;
}

/// A grid engineered for witness ties: duplicated inputs guarantee equal
/// times across the input axis of every cell, and the |Q|=1 and stateless
/// platforms guarantee ties across states — if the batched merge broke the
/// smallest-index tie-break anywhere, these witnesses would move.
ScenarioSuite tiedSuite() {
  ScenarioSuite suite;
  {
    const auto prog = isa::ast::compileBranchy(isa::workloads::linearSearch(6));
    auto inputs = isa::workloads::randomArrayInputs(prog, "a", 6, 3, 5);
    for (auto& in : inputs) {
      in = isa::mergeInputs(in, isa::varInput(prog, "key", 1));
    }
    inputs.push_back(inputs[0]);  // duplicate input: ties on the i axis
    inputs.push_back(inputs[1]);
    suite.addWorkload("tiedSearch", prog, inputs);
  }
  {
    const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(8));
    suite.addWorkload("sumLoop", prog,
                      {isa::Input{}, isa::Input{}});  // identical inputs
  }
  exp::PlatformOptions opts;
  opts.numStates = 4;
  suite.addPlatform("inorder-lru", opts);
  suite.addPlatform("inorder-scratchpad", opts);  // |Q| = 1: state ties
  suite.addPlatform("ooo-fifo", opts);            // packed OOO path
  suite.addPlatform("ooo-preschedule", opts);     // drain mode in the batch
  suite.addPlatform("pret", opts);
  return suite;
}

TEST(ScenarioSuite, BatchedRunMatchesSequentialOnTiedGrids) {
  const auto suite = tiedSuite();
  for (const int threads : {1, 2, 4, 8}) {
    exp::EngineConfig cfg{threads, 2, 3};
    exp::ExperimentEngine batched(cfg);
    exp::ExperimentEngine sequential(cfg);
    const auto rb = suite.run(batched);
    const auto rs = suite.runSequential(sequential);
    ASSERT_EQ(rb.size(), rs.size()) << "threads=" << threads;
    for (std::size_t k = 0; k < rb.size(); ++k) {
      expectSameFinding(rb[k], rs[k]);
    }
  }
}

TEST(ScenarioSuite, BatchedRunIssuesASingleGridWalk) {
  const auto suite = tiedSuite();

  exp::ExperimentEngine batched;
  suite.run(batched);
  // All 10 queries' cells went through ONE tiled pool pass — the per-query
  // barrier is gone.
  EXPECT_EQ(batched.gridWalks(), 1u);
  EXPECT_EQ(batched.matrixBuilds(), 0u);  // still streaming, no |Q|x|I|

  exp::ExperimentEngine sequential;
  suite.runSequential(sequential);
  EXPECT_EQ(sequential.gridWalks(), suite.numScenarios());
}

TEST(ScenarioSuite, BatchedRunSharesTracesLikeTheSequentialPath) {
  const auto suite = smallSuite();  // 2 workloads (4+1 inputs) x 3 platforms
  exp::ExperimentEngine engine;
  suite.run(engine);
  EXPECT_EQ(engine.traceStore().misses(), 5u);
  EXPECT_EQ(engine.traceStore().hits(), 10u);
}

TEST(ScenarioSuite, KeepMatricesTakesThePerQueryPathWithSameResults) {
  auto suite = tiedSuite();
  suite.keepMatrices(true);
  exp::ExperimentEngine a;
  exp::ExperimentEngine b;
  const auto ra = suite.run(a);
  const auto rb = suite.runSequential(b);
  EXPECT_EQ(a.gridWalks(), suite.numScenarios());  // fell back per query
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t k = 0; k < ra.size(); ++k) {
    ASSERT_TRUE(ra[k].matrix.has_value());
    EXPECT_TRUE(*ra[k].matrix == *rb[k].matrix);
    expectSameFinding(ra[k], rb[k]);
  }
}

TEST(ScenarioSuite, JsonAndTableRenderEveryScenario) {
  const auto suite = smallSuite();
  exp::ExperimentEngine engine;
  const auto results = suite.run(engine);
  const auto json = ScenarioSuite::json(results);
  EXPECT_EQ(json.front(), '[');
  for (const auto& r : results) {
    EXPECT_NE(json.find("\"workload\": \"" + r.workload + "\""),
              std::string::npos);
    EXPECT_NE(json.find("\"platform\": \"" + r.platform + "\""),
              std::string::npos);
  }
  const auto table = ScenarioSuite::table(results);
  EXPECT_NE(table.find("linearSearch"), std::string::npos);
  EXPECT_NE(table.find("pret"), std::string::npos);
}

}  // namespace
}  // namespace pred::study
