// grid_test.cpp — The gate for the grid service (src/grid/): the framed
// wire protocol must be strict under fuzzing (truncated length prefixes
// are "need more bytes", oversize and garbage headers throw BEFORE any
// payload allocation, nothing hangs); job fingerprints must be invariant
// under scheduling knobs and sensitive to everything result-affecting;
// the LRU result cache must count hits/misses/evictions exactly; the
// work-stealing scheduler must reproduce single-process reduceCells bytes
// at every worker count, under injected eval failures, and fail loudly
// once attempts are exhausted; and a full in-process server/client round
// trip must serve the second submission from the cache with identical
// bytes while surviving garbage connections — the subprocess flavor of
// the same story is scripts/grid_run.sh (ctest grid_subprocess_smoke).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <chrono>

#include "core/measures.h"
#include "exp/engine.h"
#include "exp/platform.h"
#include "exp/shard.h"
#include "grid/attach_worker.h"
#include "grid/cache.h"
#include "grid/client.h"
#include "grid/fingerprint.h"
#include "grid/net.h"
#include "grid/protocol.h"
#include "grid/scheduler.h"
#include "grid/server.h"
#include "study/distributed.h"
#include "study/query.h"
#include "study/workloads.h"
#include "witness_expect.h"

namespace pred {
namespace {

using core::StreamingMeasures;
using exp::ShardSpec;

// ------------------------------------------------------------ test helpers

/// A fresh, collision-free unix socket path under /tmp (unix socket paths
/// must stay short, so no mkdtemp nesting).
std::string uniqueSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/pred-grid-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// The small grid every scheduler/server test evaluates: 8 states of
/// inorder-lru over bubblesort-8 (fast, and the same shape shard_test.cpp
/// gates merge identity on).
struct TestGrid {
  ShardSpec whole;
  std::string singleBytes;  ///< single-process reduceCells, serialized
};

TestGrid makeTestGrid() {
  exp::PlatformOptions options;
  options.numStates = 8;
  const auto w = study::WorkloadRegistry::instance().make("bubblesort-8");
  const auto model = exp::PlatformRegistry::instance().make(
      "inorder-lru", w.program, options);
  exp::ExperimentEngine engine;

  TestGrid g;
  g.whole.platform = "inorder-lru";
  g.whole.workload = "bubblesort-8";
  g.whole.options = options;
  g.whole.qEnd = model->numStates();
  g.whole.iEnd = w.inputs.size();
  g.singleBytes = engine.reduceCells(*model, w.program, w.inputs).serialize();
  return g;
}

/// An in-process GridServer on its own unix socket with serveForever on a
/// background thread; stop() (or the destructor) performs the shutdown
/// handshake exactly once.
class InProcessServer {
 public:
  explicit InProcessServer(int workers = 2, std::size_t cacheEntries = 64,
                           bool workerListen = false) {
    path_ = uniqueSocketPath();
    endpointText_ = "unix:" + path_;
    grid::ServerConfig cfg;
    cfg.endpoint = endpointText_;
    cfg.scheduler.workers = workers;
    cfg.scheduler.retryBackoffMs = 1;
    cfg.cacheEntries = cacheEntries;
    cfg.eval = study::gridShardEvaluator();
    if (workerListen) {
      workerPath_ = uniqueSocketPath();
      cfg.workerEndpoint = "unix:" + workerPath_;
    }
    server_.emplace(std::move(cfg));
    thread_ = std::thread([this] { server_->serveForever(); });
  }

  ~InProcessServer() {
    stop();
    ::unlink(path_.c_str());
    if (!workerPath_.empty()) ::unlink(workerPath_.c_str());
  }

  const std::string& endpoint() const { return endpointText_; }
  std::string workerEndpoint() const { return "unix:" + workerPath_; }
  grid::GridServer& server() { return *server_; }

  /// Spins until `name` reaches at least `least` (the concurrent server
  /// ticks counters from its own thread), failing after ~5 s.
  void awaitCounter(const std::string& name, std::uint64_t least) {
    for (int spins = 0; spins < 200; ++spins) {
      for (const auto& [n, v] : server_->metrics().counterValues())
        if (n == name && v >= least) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    FAIL() << "counter " << name << " never reached " << least;
  }

  /// Shutdown handshake + join.  The server handles connections
  /// SEQUENTIALLY, so every test-owned GridClient must be destroyed (its
  /// connection closed) before this runs — declare clients after the
  /// fixture and let scope order do it.
  void stop() {
    if (!thread_.joinable()) return;
    grid::GridClient(endpointText_).shutdownServer();
    thread_.join();
  }

 private:
  std::string path_;
  std::string workerPath_;
  std::string endpointText_;
  std::optional<grid::GridServer> server_;
  std::thread thread_;
};

// --------------------------------------------------------------- framing

grid::Frame frameOf(grid::FrameType type, std::string payload) {
  grid::Frame f;
  f.type = type;
  f.payload = std::move(payload);
  return f;
}

TEST(GridFrame, RoundTripsEveryTypeAndDecodesSequentially) {
  const std::vector<grid::FrameType> types = {
      grid::FrameType::Submit,       grid::FrameType::Result,
      grid::FrameType::Error,        grid::FrameType::StatsRequest,
      grid::FrameType::StatsReply,   grid::FrameType::Shutdown,
      grid::FrameType::ShutdownAck,  grid::FrameType::Shard,
      grid::FrameType::ShardResult,  grid::FrameType::WorkerHello,
      grid::FrameType::WorkerWelcome, grid::FrameType::ShardAssign,
      grid::FrameType::ShardDone,    grid::FrameType::Heartbeat,
  };
  // All frames concatenated into one stream: the incremental decoder must
  // walk them in order, advancing the offset past each.
  std::string stream;
  for (std::size_t i = 0; i < types.size(); ++i) {
    stream += grid::encodeFrame(
        frameOf(types[i], "payload-" + std::to_string(i)));
  }
  std::size_t offset = 0;
  for (std::size_t i = 0; i < types.size(); ++i) {
    const auto f = grid::decodeFrame(stream, offset);
    ASSERT_TRUE(f.has_value()) << i;
    EXPECT_EQ(f->type, types[i]) << i;
    EXPECT_EQ(f->payload, "payload-" + std::to_string(i)) << i;
  }
  EXPECT_EQ(offset, stream.size());
  EXPECT_FALSE(grid::decodeFrame(stream, offset).has_value());

  // Empty payloads round-trip too (Stats/Shutdown are header-only).
  std::size_t o = 0;
  const auto empty = grid::decodeFrame(
      grid::encodeFrame(frameOf(grid::FrameType::Shutdown, "")), o);
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->payload, "");
}

TEST(GridFrame, EveryTruncatedPrefixIsNeedMoreBytesNotAnError) {
  const std::string whole =
      grid::encodeFrame(frameOf(grid::FrameType::Submit, "some payload"));
  // A truncated prefix of a valid frame — cut at EVERY byte boundary,
  // inside the header and inside the payload — must read as "incomplete",
  // never as malformed, and must not advance the offset.
  for (std::size_t cut = 0; cut < whole.size(); ++cut) {
    std::size_t offset = 0;
    const auto f = grid::decodeFrame(
        std::string_view(whole).substr(0, cut), offset);
    EXPECT_FALSE(f.has_value()) << "cut=" << cut;
    EXPECT_EQ(offset, 0u) << "cut=" << cut;
  }
}

TEST(GridFrame, MalformedHeadersThrowBeforeAnyPayloadArrives) {
  const auto decodes = [](std::string bytes) {
    std::size_t offset = 0;
    return grid::decodeFrame(bytes, offset);
  };
  const std::string good =
      grid::encodeFrame(frameOf(grid::FrameType::Error, "x"));

  // Bad magic.
  std::string badMagic = good;
  badMagic[0] = 'X';
  EXPECT_THROW(decodes(badMagic), std::invalid_argument);

  // Unknown protocol version.
  std::string badVersion = good;
  badVersion[2] = static_cast<char>(grid::kProtocolVersion + 1);
  EXPECT_THROW(decodes(badVersion), std::invalid_argument);

  // Unknown frame types on both sides of the valid range.
  std::string badType = good;
  badType[3] = 0;
  EXPECT_THROW(decodes(badType), std::invalid_argument);
  badType[3] = 42;
  EXPECT_THROW(decodes(badType), std::invalid_argument);

  // An adversarial length (kMaxFramePayload + 1, and the full 4 GiB)
  // must throw from the bare 8-byte header — the payload NEVER follows,
  // so a decoder that tried to allocate or wait for it would hang/balloon.
  const auto headerWithLength = [](std::uint32_t n) {
    std::string h = "PG";
    h.push_back(static_cast<char>(grid::kProtocolVersion));
    h.push_back(static_cast<char>(grid::FrameType::Submit));
    for (int shift = 24; shift >= 0; shift -= 8) {
      h.push_back(static_cast<char>((n >> shift) & 0xff));
    }
    return h;
  };
  EXPECT_THROW(
      decodes(headerWithLength(
          static_cast<std::uint32_t>(grid::kMaxFramePayload) + 1)),
      std::invalid_argument);
  EXPECT_THROW(decodes(headerWithLength(0xffffffffu)),
               std::invalid_argument);
  // The cap itself is legal as a LENGTH — header-only, so: incomplete.
  std::size_t offset = 0;
  EXPECT_FALSE(
      grid::decodeFrame(
          headerWithLength(static_cast<std::uint32_t>(grid::kMaxFramePayload)),
          offset)
          .has_value());
}

TEST(GridFrame, RandomGarbageEitherThrowsOrWantsMoreNeverHangs) {
  // Deterministic fuzz: random byte strings must hit exactly one of two
  // outcomes — std::invalid_argument, or "need more bytes" — and when a
  // frame IS (astronomically unlikely) valid, the offset must advance.
  std::mt19937 rng(20110314);  // DATE'11
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<std::size_t> len(0, 64);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes(len(rng), '\0');
    for (auto& c : bytes) c = static_cast<char>(byte(rng));
    std::size_t offset = 0;
    try {
      const auto f = grid::decodeFrame(bytes, offset);
      if (f.has_value()) {
        EXPECT_GT(offset, 0u);
        EXPECT_LE(offset, bytes.size());
      } else {
        EXPECT_EQ(offset, 0u);
      }
    } catch (const std::invalid_argument&) {
      // strict rejection: fine.
    }
  }
}

TEST(GridFrame, FdReaderHandlesCleanEofAndThrowsOnTruncation) {
  const auto pipeWith = [](const std::string& bytes) {
    int fds[2];
    EXPECT_EQ(::pipe(fds), 0);
    grid::net::writeAll(fds[1], bytes.data(), bytes.size());
    ::close(fds[1]);  // EOF after `bytes`
    return grid::net::Fd(fds[0]);
  };

  // A whole frame, then clean EOF: one successful read, then false.
  const std::string whole =
      grid::encodeFrame(frameOf(grid::FrameType::Shard, "spec"));
  {
    const auto fd = pipeWith(whole);
    grid::Frame f;
    ASSERT_TRUE(grid::readFrame(fd.get(), f));
    EXPECT_EQ(f.payload, "spec");
    EXPECT_FALSE(grid::readFrame(fd.get(), f));
  }
  // EOF inside the header: truncation, not clean EOF.
  {
    const auto fd = pipeWith(whole.substr(0, 5));
    grid::Frame f;
    EXPECT_THROW(grid::readFrame(fd.get(), f), std::runtime_error);
  }
  // A header promising payload bytes that never arrive: truncation.
  {
    const auto fd = pipeWith(whole.substr(0, grid::kFrameHeaderBytes + 1));
    grid::Frame f;
    EXPECT_THROW(grid::readFrame(fd.get(), f), std::runtime_error);
  }
}

// -------------------------------------------------------- payload codecs

TEST(GridPayloads, JobRequestRoundTripsAndRejectsGarbage) {
  grid::JobRequest req;
  req.spec.platform = "ooo-fifo";
  req.spec.workload = "bubblesort-8";
  req.spec.options.numStates = 6;
  req.spec.qBegin = 1;
  req.spec.qEnd = 5;
  req.spec.iBegin = 2;
  req.spec.iEnd = 9;
  req.spec.engine.threads = 3;
  req.shards = 7;
  req.useCache = false;

  const auto back = grid::parseJobRequest(grid::encodeJobRequest(req));
  EXPECT_EQ(exp::serializeShardSpec(back.spec),
            exp::serializeShardSpec(req.spec));
  EXPECT_EQ(back.shards, 7u);
  EXPECT_FALSE(back.useCache);

  for (const char* bad :
       {"", "not a job", "pred-job v1\n", "shards 4\nuse-cache 1\n"}) {
    EXPECT_THROW(grid::parseJobRequest(bad), std::invalid_argument) << bad;
  }
}

TEST(GridPayloads, JobResultMsgRoundTripsAndRejectsGarbage) {
  grid::JobResultMsg msg;
  msg.cacheHit = true;
  msg.fingerprint = "00deadbeef001234";
  msg.accumulatorText = "line one\nline two\n";

  const auto back = grid::parseJobResultMsg(grid::encodeJobResultMsg(msg));
  EXPECT_TRUE(back.cacheHit);
  EXPECT_EQ(back.fingerprint, msg.fingerprint);
  EXPECT_EQ(back.accumulatorText, msg.accumulatorText);

  for (const char* bad : {"", "garbage", "cache-hit maybe\n"}) {
    EXPECT_THROW(grid::parseJobResultMsg(bad), std::invalid_argument) << bad;
  }
}

TEST(GridPayloads, ShardResultMsgRoundTripsAndRejectsGarbage) {
  grid::ShardResultMsg msg;
  msg.accumulatorText = "acc bytes\nwith newlines\n";
  msg.reportText = "report bytes\n";

  const auto back =
      grid::parseShardResultMsg(grid::encodeShardResultMsg(msg));
  EXPECT_EQ(back.accumulatorText, msg.accumulatorText);
  EXPECT_EQ(back.reportText, msg.reportText);

  for (const char* bad : {"", "nonsense", "acc 3\nxyz"}) {
    EXPECT_THROW(grid::parseShardResultMsg(bad), std::invalid_argument)
        << bad;
  }
}

TEST(GridPayloads, WorkerHelloMsgRoundTripsAndRejectsGarbage) {
  grid::WorkerHelloMsg msg;
  msg.salt = "some-build-salt";
  msg.concurrency = 4;

  const auto back =
      grid::parseWorkerHelloMsg(grid::encodeWorkerHelloMsg(msg));
  EXPECT_EQ(back.salt, msg.salt);
  EXPECT_EQ(back.concurrency, 4u);

  for (const char* bad :
       {"", "not a hello", "pred-grid-hello v1\n",
        "pred-grid-hello v1\nsalt s\nconcurrency 0\n",
        "pred-grid-hello v1\nsalt s\nconcurrency 2\ntrailing"}) {
    EXPECT_THROW(grid::parseWorkerHelloMsg(bad), std::invalid_argument)
        << bad;
  }
  // Whitespace in the salt would corrupt the line framing: refused at
  // encode time, before it ever reaches a wire.
  msg.salt = "two words";
  EXPECT_THROW(grid::encodeWorkerHelloMsg(msg), std::invalid_argument);
}

TEST(GridPayloads, ShardAssignMsgRoundTripsAndRejectsGarbage) {
  grid::ShardAssignMsg msg;
  msg.id = 7;
  msg.spec.platform = "inorder-lru";
  msg.spec.workload = "bubblesort-8";
  msg.spec.options.numStates = 8;
  msg.spec.qBegin = 1;
  msg.spec.qEnd = 5;
  msg.spec.iBegin = 0;
  msg.spec.iEnd = 3;

  const auto back =
      grid::parseShardAssignMsg(grid::encodeShardAssignMsg(msg));
  EXPECT_EQ(back.id, 7u);
  EXPECT_EQ(exp::serializeShardSpec(back.spec),
            exp::serializeShardSpec(msg.spec));

  for (const char* bad :
       {"", "garbage", "pred-grid-assign v1\n",
        "pred-grid-assign v1\nid 3\nnot a shard spec"}) {
    EXPECT_THROW(grid::parseShardAssignMsg(bad), std::invalid_argument)
        << bad;
  }
}

TEST(GridPayloads, ShardDoneMsgRoundTripsBothOutcomes) {
  grid::ShardDoneMsg ok;
  ok.id = 11;
  ok.ok = true;
  ok.reportText = "report bytes\nwith newlines\n";
  ok.accumulatorText = "acc bytes\nmore\n";
  const auto backOk = grid::parseShardDoneMsg(grid::encodeShardDoneMsg(ok));
  EXPECT_EQ(backOk.id, 11u);
  EXPECT_TRUE(backOk.ok);
  EXPECT_EQ(backOk.reportText, ok.reportText);
  EXPECT_EQ(backOk.accumulatorText, ok.accumulatorText);

  grid::ShardDoneMsg fail;
  fail.id = 12;
  fail.ok = false;
  fail.errorText = "unknown platform: xyz";
  const auto backFail =
      grid::parseShardDoneMsg(grid::encodeShardDoneMsg(fail));
  EXPECT_EQ(backFail.id, 12u);
  EXPECT_FALSE(backFail.ok);
  EXPECT_EQ(backFail.errorText, fail.errorText);

  for (const char* bad :
       {"", "garbage", "pred-grid-done v1\nid 1\nok 1\nreport 999\nshort"}) {
    EXPECT_THROW(grid::parseShardDoneMsg(bad), std::invalid_argument) << bad;
  }
}

// ----------------------------------------------------------- fingerprint

TEST(GridFingerprint, Fnv1a64MatchesPublishedVectors) {
  // Published FNV-1a 64 test vectors — the hash must be THE fnv1a, not a
  // lookalike, so fingerprints stay stable across builds and machines.
  EXPECT_EQ(grid::fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(grid::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(grid::fnv1a64("foobar"), 0x85944171f73967e8ull);
  // Chaining: hashing "ab" equals hashing "b" seeded with hash("a").
  EXPECT_EQ(grid::fnv1a64("b", grid::fnv1a64("a")), grid::fnv1a64("ab"));

  EXPECT_EQ(grid::fingerprintHex(0), "0000000000000000");
  EXPECT_EQ(grid::fingerprintHex(0xdeadbeefull), "00000000deadbeef");
  EXPECT_EQ(grid::fingerprintHex(0xffffffffffffffffull),
            "ffffffffffffffff");
}

TEST(GridFingerprint, SchedulingKnobsDoNotPerturbTheAddress) {
  ShardSpec base;
  base.platform = "inorder-lru";
  base.workload = "bubblesort-8";
  base.options.numStates = 8;
  base.qEnd = 8;
  base.iEnd = 40;
  const std::string fp = grid::jobFingerprint(base);
  ASSERT_EQ(fp.size(), 16u);
  for (const char c : fp) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << fp;
  }

  // Scheduling-only engine knobs must map to the SAME address — they pick
  // how the grid is computed, never what the bytes are.
  ShardSpec knobs = base;
  knobs.engine.threads = 7;
  knobs.engine.tileStates = 16;
  knobs.engine.tileInputs = 2;
  knobs.engine.usePackedReplay = !knobs.engine.usePackedReplay;
  knobs.engine.collapseTraceClasses = !knobs.engine.collapseTraceClasses;
  EXPECT_EQ(grid::jobFingerprint(knobs), fp);

  // Everything result-affecting must move it.
  ShardSpec other = base;
  other.platform = "ooo-fifo";
  EXPECT_NE(grid::jobFingerprint(other), fp);
  other = base;
  other.workload = "linearsearch-12";
  EXPECT_NE(grid::jobFingerprint(other), fp);
  other = base;
  other.qEnd = 7;
  EXPECT_NE(grid::jobFingerprint(other), fp);
  other = base;
  other.iBegin = 1;
  EXPECT_NE(grid::jobFingerprint(other), fp);
  other = base;
  other.options.numStates = 6;
  EXPECT_NE(grid::jobFingerprint(other), fp);
}

// ----------------------------------------------------------- result cache

TEST(GridCache, CountsHitsMissesAndEvictsLeastRecentlyUsed) {
  grid::ResultCache cache(2);
  EXPECT_EQ(cache.maxEntries(), 2u);
  EXPECT_FALSE(cache.lookup("a").has_value());
  EXPECT_EQ(cache.misses(), 1u);

  cache.insert("a", "bytes-a");
  cache.insert("b", "bytes-b");
  EXPECT_EQ(cache.size(), 2u);

  // Touch "a" so "b" becomes the LRU entry; inserting "c" must evict "b".
  EXPECT_EQ(cache.lookup("a").value(), "bytes-a");
  cache.insert("c", "bytes-c");
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_EQ(cache.lookup("a").value(), "bytes-a");
  EXPECT_EQ(cache.lookup("c").value(), "bytes-c");
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);

  // Re-inserting an existing key replaces bytes without growing the cache.
  cache.insert("a", "bytes-a2");
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.lookup("a").value(), "bytes-a2");
}

TEST(GridCache, ZeroEntriesDisablesCachingEntirely) {
  grid::ResultCache cache(0);
  cache.insert("k", "v");
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup("k").has_value());
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

// -------------------------------------------------------------- scheduler

TEST(GridScheduler, MatchesSingleProcessBytesAtEveryWorkerCount) {
  const auto g = makeTestGrid();
  const auto eval = study::gridShardEvaluator();
  // 7 shards of an 8 x |I| grid: a non-divisible split, stolen by 1, 2,
  // and 4 workers — every combination must merge to the single-process
  // bytes exactly.
  const auto plan = exp::planShards(g.whole, 7);
  for (const int workers : {1, 2, 4}) {
    grid::SchedulerConfig cfg;
    cfg.workers = workers;
    cfg.retryBackoffMs = 1;
    grid::WorkStealingScheduler sched(cfg);
    EXPECT_EQ(sched.estimatedNsPerCell(), 0.0);
    const auto outcome = sched.run(plan, eval);
    const std::string label = "workers=" + std::to_string(workers);
    EXPECT_EQ(outcome.merged.serialize(), g.singleBytes) << label;
    EXPECT_EQ(outcome.shardCount, plan.size()) << label;
    EXPECT_EQ(outcome.retries, 0u) << label;
    // The cost model calibrated itself from the shards' own reports.
    EXPECT_GT(sched.estimatedNsPerCell(), 0.0) << label;
  }

  grid::WorkStealingScheduler sched(grid::SchedulerConfig{});
  EXPECT_THROW(sched.run({}, eval), std::invalid_argument);
}

TEST(GridScheduler, RetriesInjectedFailuresAndStaysByteIdentical) {
  const auto g = makeTestGrid();
  const auto real = study::gridShardEvaluator();

  // Every shard's FIRST attempt throws; retries succeed.  The outcome
  // must be byte-identical anyway — a retried shard's contribution is
  // indistinguishable from a first-try one.
  std::mutex mu;
  std::set<std::pair<std::size_t, std::size_t>> failed;
  const grid::ShardEvalFn flaky =
      [&](const ShardSpec& spec) -> grid::ShardOutput {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (failed.insert({spec.qBegin, spec.iBegin}).second) {
        throw std::runtime_error("injected first-attempt failure");
      }
    }
    return real(spec);
  };

  obs::MetricsRegistry metrics;
  grid::SchedulerConfig cfg;
  cfg.workers = 3;
  cfg.maxAttempts = 3;
  cfg.retryBackoffMs = 1;
  cfg.metrics = &metrics;
  grid::WorkStealingScheduler sched(cfg);

  const auto plan = exp::planShards(g.whole, 5);
  const auto outcome = sched.run(plan, flaky);
  EXPECT_EQ(outcome.merged.serialize(), g.singleBytes);
  EXPECT_EQ(outcome.retries, plan.size());
  EXPECT_EQ(metrics.counterValues().at("grid.shards.retried"), plan.size());
  // Every shard was dispatched twice: the failed attempt plus the retry.
  EXPECT_EQ(metrics.counterValues().at("grid.shards.dispatched"),
            2 * plan.size());
}

TEST(GridScheduler, FailsLoudlyOnceAttemptsAreExhausted) {
  const auto g = makeTestGrid();
  grid::SchedulerConfig cfg;
  cfg.workers = 2;
  cfg.maxAttempts = 2;
  cfg.retryBackoffMs = 1;
  grid::WorkStealingScheduler sched(cfg);

  const grid::ShardEvalFn alwaysFails =
      [](const ShardSpec&) -> grid::ShardOutput {
    throw std::runtime_error("this shard never succeeds");
  };
  try {
    sched.run(exp::planShards(g.whole, 4), alwaysFails);
    FAIL() << "expected the job to fail after maxAttempts";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 attempt"), std::string::npos) << what;
    EXPECT_NE(what.find("never succeeds"), std::string::npos) << what;
  }
}

// -------------------------------------------- server + client end to end

TEST(GridServer, ServesSecondSubmissionFromTheCacheWithIdenticalBytes) {
  const auto g = makeTestGrid();
  InProcessServer fixture(/*workers=*/2);
  grid::GridClient client(fixture.endpoint());

  // First submission: computed, cached, byte-identical to reduceCells.
  const auto first = client.submit(g.whole, 4);
  EXPECT_FALSE(first.cacheHit);
  EXPECT_EQ(first.accumulatorText, g.singleBytes);
  EXPECT_EQ(first.fingerprint, grid::jobFingerprint(g.whole));
  EXPECT_TRUE(first.measures.identicalTo(
      StreamingMeasures::deserialize(g.singleBytes)));

  // Second submission: the acceptance criterion — a cache hit with the
  // EXACT same bytes.
  const auto second = client.submit(g.whole, 4);
  EXPECT_TRUE(second.cacheHit);
  EXPECT_EQ(second.accumulatorText, g.singleBytes);
  EXPECT_EQ(second.fingerprint, first.fingerprint);

  // A different shard split of the same grid is the same content address:
  // still a hit, still the same bytes.
  const auto resharded = client.submit(g.whole, 7);
  EXPECT_TRUE(resharded.cacheHit);
  EXPECT_EQ(resharded.accumulatorText, g.singleBytes);

  // useCache=false bypasses the lookup (recomputes) but not the insert.
  const auto forced = client.submit(g.whole, 4, /*useCache=*/false);
  EXPECT_FALSE(forced.cacheHit);
  EXPECT_EQ(forced.accumulatorText, g.singleBytes);

  // The server's own telemetry agrees.
  const auto stats = client.stats();
  EXPECT_EQ(stats.counters.at("grid.cache.hits"), 2u);
  EXPECT_EQ(stats.counters.at("grid.cache.misses"), 1u);
  // grid.jobs counts EVALUATED jobs: the first submission plus the forced
  // recomputation; the two cache hits never reached the scheduler.
  EXPECT_EQ(stats.counters.at("grid.jobs"), 2u);
  EXPECT_EQ(fixture.server().cache().hits(), 2u);
  EXPECT_EQ(fixture.server().cache().size(), 1u);
  // `client` disconnects first (scope order), then the fixture's
  // destructor runs the Shutdown/ShutdownAck handshake.
}

TEST(GridServer, SurvivesGarbageConnectionsAndKeepsServing) {
  const auto g = makeTestGrid();
  InProcessServer fixture(/*workers=*/2);

  // A hostile peer: 16 bytes of garbage, then write-close.  The server
  // must reply best-effort Error (or just drop us), close the
  // connection, and keep its accept loop alive.
  {
    const auto ep = grid::net::parseEndpoint(fixture.endpoint());
    const auto fd = grid::net::connectTo(ep);
    const std::string garbage(16, 'X');
    grid::net::writeAll(fd.get(), garbage.data(), garbage.size());
    ::shutdown(fd.get(), SHUT_WR);
    grid::Frame reply;
    try {
      if (grid::readFrame(fd.get(), reply)) {
        EXPECT_EQ(reply.type, grid::FrameType::Error);
      }
    } catch (const std::exception&) {
      // The server may also close before the reply lands; either way the
      // point is the NEXT connection, below.
    }
  }

  // A well-formed client right after the garbage one: served normally.
  grid::GridClient client(fixture.endpoint());
  const auto result = client.submit(g.whole, 3);
  EXPECT_EQ(result.accumulatorText, g.singleBytes);
  const auto stats = client.stats();
  EXPECT_GE(stats.counters.at("grid.bad_frames"), 1u);
}

TEST(GridServer, SurvivesAPeerThatVanishesBeforeReadingItsReply) {
  const auto g = makeTestGrid();
  InProcessServer fixture(/*workers=*/2);

  // A flaky peer: a well-formed Submit, then gone (timeout / Ctrl-C /
  // crash) before reading the Result frame.  The server's reply write
  // hits EPIPE; that must kill the connection, never the daemon.
  {
    const auto ep = grid::net::parseEndpoint(fixture.endpoint());
    const auto fd = grid::net::connectTo(ep);
    grid::writeFrame(fd.get(),
                     grid::Frame{grid::FrameType::Submit,
                                 grid::encodeJobRequest(
                                     grid::JobRequest{g.whole, 2, true})});
    // Scope exit closes the socket while the server is still evaluating.
  }

  // The accept loop (and the result cache it fronts) must still be alive:
  // the vanished peer's job was computed and cached, so this is a hit.
  grid::GridClient client(fixture.endpoint());
  const auto result = client.submit(g.whole, 2);
  EXPECT_EQ(result.accumulatorText, g.singleBytes);
}

// ----------------------------- concurrent clients & attached workers

TEST(GridServer, TwoConcurrentClientsGetTheirOwnBytesBack) {
  // Two clients with DIFFERENT jobs in flight at once: their shard sets
  // interleave through the one work-stealing queue, and each connection
  // must get exactly its own result — never the other's, never a blend.
  const auto g = makeTestGrid();

  exp::PlatformOptions options;
  options.numStates = 8;
  const auto w = study::WorkloadRegistry::instance().make("bubblesort-8");
  const auto model = exp::PlatformRegistry::instance().make(
      "ooo-fifo", w.program, options);
  ShardSpec other;
  other.platform = "ooo-fifo";
  other.workload = "bubblesort-8";
  other.options = options;
  other.qEnd = model->numStates();
  other.iEnd = w.inputs.size();
  const std::string otherBytes =
      exp::ExperimentEngine()
          .reduceCells(*model, w.program, w.inputs)
          .serialize();
  ASSERT_NE(otherBytes, g.singleBytes);

  InProcessServer fixture(/*workers=*/2);
  std::string bytesA, bytesB;
  std::thread a([&] {
    grid::GridClient client(fixture.endpoint());
    bytesA = client.submit(g.whole, 5).accumulatorText;
  });
  std::thread b([&] {
    grid::GridClient client(fixture.endpoint());
    bytesB = client.submit(other, 5).accumulatorText;
  });
  a.join();
  b.join();
  EXPECT_EQ(bytesA, g.singleBytes);
  EXPECT_EQ(bytesB, otherBytes);

  grid::GridClient client(fixture.endpoint());
  const auto stats = client.stats();
  EXPECT_EQ(stats.counters.at("grid.jobs"), 2u);
}

TEST(GridServer, AttachedWorkerServesEveryShardByteIdentically) {
  // Attach-only shape: zero fixed worker slots, one remote worker dialing
  // the dedicated worker endpoint.  Every shard flows over the socket and
  // the merged bytes must still match the single-process reference.
  const auto g = makeTestGrid();
  InProcessServer fixture(/*workers=*/0, 64, /*workerListen=*/true);

  std::thread worker([&] {
    grid::AttachOptions opts;
    opts.concurrency = 2;
    grid::runAttachWorker(fixture.workerEndpoint(),
                          study::gridShardEvaluator(), opts);
  });

  {
    grid::GridClient client(fixture.endpoint());
    const auto result = client.submit(g.whole, 5);
    EXPECT_FALSE(result.cacheHit);
    EXPECT_EQ(result.accumulatorText, g.singleBytes);

    const auto stats = client.stats();
    EXPECT_EQ(stats.counters.at("grid.worker.attached"), 1u);
    EXPECT_EQ(stats.counters.at("grid.worker.deaths"), 0u);
    // Provenance: the stats report names the channel that did the work.
    bool sawChannel = false;
    for (const auto& [name, value] : stats.counters) {
      if (name.rfind("grid.channel.0.socket.", 0) == 0) {
        sawChannel = true;
        EXPECT_EQ(value, 5u) << name;  // all five shards went through it
      }
    }
    EXPECT_TRUE(sawChannel);
  }

  // stop() sends the fleet Shutdown frames; the attach loop exits cleanly.
  fixture.stop();
  worker.join();
}

TEST(GridServer, AttachedWorkerDyingMidShardIsSurvived) {
  // A worker that dials in, accepts a lease, and dies without answering:
  // the orphaned shard must requeue onto the surviving fixed slots and
  // the job must still complete byte-identically.
  const auto g = makeTestGrid();
  InProcessServer fixture(/*workers=*/2);

  std::thread doomed([&] {
    try {
      auto fd = grid::net::connectTo(
          grid::net::parseEndpoint(fixture.endpoint()));
      grid::WorkerHelloMsg hello;
      hello.salt = std::string(grid::kCodeVersionSalt);
      hello.concurrency = 1;
      grid::writeFrame(fd.get(),
                       grid::Frame{grid::FrameType::WorkerHello,
                                   grid::encodeWorkerHelloMsg(hello)});
      grid::Frame welcome;
      if (!grid::readFrame(fd.get(), welcome, 10'000)) return;
      EXPECT_EQ(welcome.type, grid::FrameType::WorkerWelcome);
      grid::Frame assign;  // blocks until the submit below dispatches
      if (!grid::readFrame(fd.get(), assign, 20'000)) return;
      EXPECT_EQ(assign.type, grid::FrameType::ShardAssign);
      // Die holding the lease: scope exit closes the socket unanswered.
    } catch (const std::exception& e) {
      ADD_FAILURE() << "doomed worker: " << e.what();
    }
  });
  fixture.awaitCounter("grid.worker.attached", 1);

  grid::GridClient client(fixture.endpoint());
  const auto result = client.submit(g.whole, 8);
  EXPECT_EQ(result.accumulatorText, g.singleBytes);
  doomed.join();

  const auto stats = client.stats();
  EXPECT_GE(stats.counters.at("grid.worker.deaths"), 1u);
  EXPECT_EQ(stats.counters.at("grid.worker.attached"), 1u);
}

TEST(GridNet, ListenRefusesToReplaceANonSocketFile) {
  const std::string path = uniqueSocketPath();
  {
    std::ofstream out(path);
    out << "precious operator data\n";
  }
  grid::net::Endpoint ep;
  ep.isUnix = true;
  ep.path = path;
  EXPECT_THROW(grid::net::listenOn(ep, /*backlog=*/4, nullptr),
               std::runtime_error);
  // The mistyped target survives untouched.
  std::ifstream in(path);
  std::string line;
  EXPECT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "precious operator data");
  ::unlink(path.c_str());
}

TEST(GridServer, RejectsJobsForUnknownNamesWithoutDying) {
  InProcessServer fixture(/*workers=*/2);
  grid::GridClient client(fixture.endpoint());

  ShardSpec bogus;
  bogus.platform = "no-such-platform";
  bogus.workload = "bubblesort-8";
  bogus.qEnd = 4;
  bogus.iEnd = 4;
  // The server answers with an Error frame (re-thrown here), and the
  // SAME connection keeps working afterwards.
  EXPECT_THROW(client.submit(bogus, 2), std::runtime_error);

  const auto g = makeTestGrid();
  EXPECT_EQ(client.submit(g.whole, 2).accumulatorText, g.singleBytes);
}

// -------------------------------------------------- study-layer entry

TEST(GridQuery, RunDistributedMatchesRunAndReportsTheCacheHit) {
  InProcessServer fixture(/*workers=*/2);

  exp::ExperimentEngine engine;
  const auto query = study::Query()
                         .workload("bubblesort-8")
                         .platform("ooo-fifo")
                         .mode(study::Exhaustive{});
  const auto reference = query.run(engine);

  // The server handles connections sequentially, so close this client's
  // connection (scope exit) before the endpoint-overload call below dials
  // its own.
  {
    grid::GridClient client(fixture.endpoint());
    for (const std::size_t shards : {1u, 3u}) {
      const auto finding = query.runDistributed(client, shards);
      const std::string label = "shards=" + std::to_string(shards);
      EXPECT_EQ(finding.workload, reference.workload) << label;
      EXPECT_EQ(finding.platform, reference.platform) << label;
      EXPECT_EQ(finding.numStates, reference.numStates) << label;
      EXPECT_EQ(finding.numInputs, reference.numInputs) << label;
      EXPECT_EQ(finding.bcet, reference.bcet) << label;
      EXPECT_EQ(finding.wcet, reference.wcet) << label;
      EXPECT_EQ(finding.stateLabels, reference.stateLabels) << label;
      expectSamePredictabilityValue(finding.pr, reference.pr, label);
      expectSamePredictabilityValue(finding.sipr, reference.sipr, label);
      expectSamePredictabilityValue(finding.iipr, reference.iipr, label);

      // First submission computes, later ones hit the cache (the shard
      // count is a scheduling knob, so shards=3 shares shards=1's
      // address); the Finding's report carries the flag either way.
      ASSERT_TRUE(finding.report.has_value()) << label;
      EXPECT_EQ(finding.report->counters.at("grid.cache.hit"),
                shards == 1 ? 0u : 1u)
          << label;
    }
  }

  // The endpoint-string overload dials its own connection.
  const auto viaEndpoint = query.runDistributed(fixture.endpoint(), 2);
  ASSERT_TRUE(viaEndpoint.report.has_value());
  EXPECT_EQ(viaEndpoint.report->counters.at("grid.cache.hit"), 1u);
  EXPECT_EQ(viaEndpoint.bcet, reference.bcet);
  EXPECT_EQ(viaEndpoint.wcet, reference.wcet);
}

}  // namespace
}  // namespace pred
