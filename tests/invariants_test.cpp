// invariants_test.cpp — Cross-cutting invariants, parameterized over
// configurations: arbiters never starve or double-serve; DRAM controllers
// conserve work for every timing parameterization; the OoO pipeline is
// deterministic and monotone in its latencies.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "dram/controllers.h"
#include "isa/ast.h"
#include "isa/exec.h"
#include "isa/workloads.h"
#include "noc/arbiter.h"
#include "noc/shared_resource.h"
#include "pipeline/memory_iface.h"
#include "pipeline/ooo.h"

namespace pred {
namespace {

// ---------------------------------------------------------------------------
// Arbiter invariants.
// ---------------------------------------------------------------------------

enum class ArbKind { Tdm, Fcfs, RoundRobin, FixedPriority };

std::unique_ptr<noc::Arbiter> makeArbiter(ArbKind k, int clients) {
  switch (k) {
    case ArbKind::Tdm: {
      std::vector<int> table;
      for (int c = 0; c < clients; ++c) table.push_back(c);
      return std::make_unique<noc::TdmArbiter>(table);
    }
    case ArbKind::Fcfs:
      return std::make_unique<noc::FcfsArbiter>();
    case ArbKind::RoundRobin:
      return std::make_unique<noc::RoundRobinArbiter>();
    case ArbKind::FixedPriority:
      return std::make_unique<noc::FixedPriorityArbiter>();
  }
  return nullptr;
}

class ArbiterInvariants : public ::testing::TestWithParam<ArbKind> {};

TEST_P(ArbiterInvariants, EveryRequestServedExactlyOnce) {
  const int clients = 4;
  noc::SharedResource res(clients, 3);
  std::vector<noc::NocRequest> all;
  for (int c = 0; c < clients; ++c) {
    auto s = noc::periodicStream(c, static_cast<noc::Cycles>(c * 2), 7, 25);
    all.insert(all.end(), s.begin(), s.end());
  }
  auto arb = makeArbiter(GetParam(), clients);
  const auto served = res.run(*arb, all);
  ASSERT_EQ(served.size(), all.size());
  std::map<std::pair<int, std::uint64_t>, int> seen;
  for (const auto& s : served) {
    ++seen[{s.request.client, s.request.id}];
    EXPECT_GE(s.start, s.request.arrival);  // no time travel
    EXPECT_EQ(s.finish - s.start, 3u);      // exact service time
  }
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);
}

TEST_P(ArbiterInvariants, NoOverlappingService) {
  const int clients = 3;
  noc::SharedResource res(clients, 5);
  std::vector<noc::NocRequest> all;
  for (int c = 0; c < clients; ++c) {
    auto s = noc::burstyStream(c, 0, 30, 4, 5);
    all.insert(all.end(), s.begin(), s.end());
  }
  auto arb = makeArbiter(GetParam(), clients);
  auto served = res.run(*arb, all);
  std::sort(served.begin(), served.end(),
            [](const noc::NocServed& a, const noc::NocServed& b) {
              return a.start < b.start;
            });
  for (std::size_t k = 1; k < served.size(); ++k) {
    EXPECT_GE(served[k].start, served[k - 1].finish);
  }
}

TEST_P(ArbiterInvariants, PerClientFifoOrder) {
  const int clients = 3;
  noc::SharedResource res(clients, 2);
  std::vector<noc::NocRequest> all;
  for (int c = 0; c < clients; ++c) {
    auto s = noc::periodicStream(c, 0, 3, 20);
    all.insert(all.end(), s.begin(), s.end());
  }
  auto arb = makeArbiter(GetParam(), clients);
  const auto served = res.run(*arb, all);
  std::map<int, std::uint64_t> lastId;
  for (const auto& s : served) {
    auto it = lastId.find(s.request.client);
    if (it != lastId.end()) {
      EXPECT_GT(s.request.id, it->second)
          << "client " << s.request.client << " served out of order";
    }
    lastId[s.request.client] = s.request.id;
  }
}

INSTANTIATE_TEST_SUITE_P(AllArbiters, ArbiterInvariants,
                         ::testing::Values(ArbKind::Tdm, ArbKind::Fcfs,
                                           ArbKind::RoundRobin,
                                           ArbKind::FixedPriority),
                         [](const ::testing::TestParamInfo<ArbKind>& info) {
                           switch (info.param) {
                             case ArbKind::Tdm: return "Tdm";
                             case ArbKind::Fcfs: return "Fcfs";
                             case ArbKind::RoundRobin: return "RoundRobin";
                             case ArbKind::FixedPriority: return "FixedPriority";
                           }
                           return "unknown";
                         });

// ---------------------------------------------------------------------------
// DRAM controller invariants across timing parameterizations.
// ---------------------------------------------------------------------------

class DramTimingSweep : public ::testing::TestWithParam<dram::DramTiming> {};

TEST_P(DramTimingSweep, ControllersConserveWork) {
  const auto timing = GetParam();
  dram::DramDevice device(dram::DramGeometry{}, timing);
  std::vector<dram::Request> reqs;
  for (int c = 0; c < 3; ++c) {
    for (int k = 0; k < 10; ++k) {
      reqs.push_back(dram::Request{c, c * 2048 + k * 512,
                                   static_cast<dram::Cycles>(k * 7)});
    }
  }
  dram::FcfsOpenPageController fcfs(device);
  dram::AmcTdmController amc(device, 3);
  dram::PredatorController pred(device, {1, 1, 1});
  for (auto* ctl : std::initializer_list<dram::DramController*>{
           &fcfs, &amc, &pred}) {
    const auto served = ctl->schedule(reqs);
    EXPECT_EQ(served.size(), reqs.size()) << ctl->name();
    for (const auto& s : served) {
      EXPECT_GE(s.start, s.request.arrival) << ctl->name();
      EXPECT_GT(s.finish, s.start) << ctl->name();
    }
  }
}

TEST_P(DramTimingSweep, TdmBoundScalesWithClosedPageDuration) {
  const auto timing = GetParam();
  dram::DramDevice device(dram::DramGeometry{}, timing);
  dram::AmcTdmController amc(device, 4);
  EXPECT_EQ(*amc.latencyBound(0),
            5 * device.closedPageDuration());  // (clients+1) slots
}

INSTANTIATE_TEST_SUITE_P(
    Timings, DramTimingSweep,
    ::testing::Values(dram::DramTiming{3, 3, 3, 20, 700, 64},
                      dram::DramTiming{2, 4, 2, 30, 500, 32},
                      dram::DramTiming{5, 5, 5, 40, 900, 128}),
    [](const ::testing::TestParamInfo<dram::DramTiming>& info) {
      return "tCL" + std::to_string(info.param.tCL) + "tRCD" +
             std::to_string(info.param.tRCD);
    });

// ---------------------------------------------------------------------------
// OoO pipeline invariants.
// ---------------------------------------------------------------------------

TEST(OooInvariants, DeterministicForSameStateAndTrace) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::bubbleSort(6));
  const auto trace = isa::FunctionalCore::run(prog, isa::Input{}).trace;
  pipeline::FixedLatencyMemory mem(2);
  pipeline::OooPipeline pipe(pipeline::OooConfig{}, &mem);
  const pipeline::OooInitialState q{2, 1, 0};
  EXPECT_EQ(pipe.run(trace, q), pipe.run(trace, q));
}

TEST(OooInvariants, MonotoneInMulLatency) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::matMul(3));
  const auto trace = isa::FunctionalCore::run(prog, isa::Input{}).trace;
  pipeline::FixedLatencyMemory mem(2);
  pipeline::Cycles prev = 0;
  for (pipeline::Cycles mulLat : {1, 2, 4, 8}) {
    pipeline::OooConfig cfg;
    cfg.mulLatency = mulLat;
    pipeline::OooPipeline pipe(cfg, &mem);
    const auto t = pipe.run(trace);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(OooInvariants, NeverFasterThanCriticalResource) {
  // Lower bound: total IU0-class work cannot be hidden.
  const auto prog = isa::ast::compileBranchy(isa::workloads::matMul(3));
  const auto trace = isa::FunctionalCore::run(prog, isa::Input{}).trace;
  pipeline::OooConfig cfg;
  pipeline::FixedLatencyMemory mem(2);
  pipeline::OooPipeline pipe(cfg, &mem);
  pipeline::Cycles mulWork = 0;
  for (const auto& rec : trace) {
    if (isa::latencyClass(rec.instr.op) == isa::LatencyClass::Multiply) {
      mulWork += cfg.mulLatency;
    }
  }
  EXPECT_GE(pipe.run(trace), mulWork);
}

TEST(OooInvariants, WiderDispatchNeverSlower) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(16));
  const auto trace = isa::FunctionalCore::run(prog, isa::Input{}).trace;
  pipeline::FixedLatencyMemory mem(2);
  pipeline::OooConfig narrow;
  narrow.dispatchWidth = 1;
  pipeline::OooConfig wide;
  wide.dispatchWidth = 2;
  pipeline::OooPipeline pNarrow(narrow, &mem);
  pipeline::OooPipeline pWide(wide, &mem);
  EXPECT_LE(pWide.run(trace), pNarrow.run(trace));
}

}  // namespace
}  // namespace pred
