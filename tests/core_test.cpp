// core_test.cpp — The predictability template and Definitions 3-5: values,
// witnesses, and the algebraic properties the paper's formulation implies.

#include <gtest/gtest.h>

#include <cmath>

#include "core/definitions.h"
#include "core/domino.h"
#include "core/measures.h"
#include "core/report.h"
#include "core/template.h"

namespace pred::core {
namespace {

TimingMatrix makeMatrix(std::initializer_list<std::initializer_list<Cycles>> rows) {
  const std::size_t nQ = rows.size();
  const std::size_t nI = rows.begin()->size();
  TimingMatrix m(nQ, nI);
  std::size_t q = 0;
  for (const auto& row : rows) {
    std::size_t i = 0;
    for (const auto t : row) m.at(q, i++) = t;
    ++q;
  }
  return m;
}

TEST(Definitions, PerfectlyPredictableSystemHasPrOne) {
  const auto m = makeMatrix({{10, 10}, {10, 10}});
  EXPECT_DOUBLE_EQ(timingPredictability(m).value, 1.0);
  EXPECT_DOUBLE_EQ(stateInducedPredictability(m).value, 1.0);
  EXPECT_DOUBLE_EQ(inputInducedPredictability(m).value, 1.0);
}

TEST(Definitions, PrIsMinOverMax) {
  const auto m = makeMatrix({{10, 20}, {40, 15}});
  const auto pr = timingPredictability(m);
  EXPECT_DOUBLE_EQ(pr.value, 10.0 / 40.0);
  EXPECT_EQ(pr.minTime, 10u);
  EXPECT_EQ(pr.maxTime, 40u);
  EXPECT_EQ(pr.q1, 0u);
  EXPECT_EQ(pr.i1, 0u);
  EXPECT_EQ(pr.q2, 1u);
  EXPECT_EQ(pr.i2, 0u);
}

TEST(Definitions, SIPrFixesInput) {
  // Input 0: states give 10 vs 20 (ratio 1/2).
  // Input 1: states give 30 vs 33 (ratio 10/11).
  const auto m = makeMatrix({{10, 33}, {20, 30}});
  const auto si = stateInducedPredictability(m);
  EXPECT_DOUBLE_EQ(si.value, 0.5);
  EXPECT_EQ(si.i1, si.i2);  // witnesses share the input by construction
}

TEST(Definitions, IIPrFixesState) {
  // State 0: inputs 10 vs 40 (1/4).  State 1: 20 vs 25.
  const auto m = makeMatrix({{10, 40}, {25, 20}});
  const auto ii = inputInducedPredictability(m);
  EXPECT_DOUBLE_EQ(ii.value, 0.25);
  EXPECT_EQ(ii.q1, ii.q2);
}

TEST(Definitions, PrNeverExceedsFactorwisePredictabilities) {
  // Property from the definitions: Pr quantifies over both sources, so it
  // is <= SIPr and <= IIPr for any matrix.
  const auto matrices = {
      makeMatrix({{10, 20}, {40, 15}}),
      makeMatrix({{5, 6, 7}, {8, 9, 10}, {11, 12, 13}}),
      makeMatrix({{100, 100}, {100, 100}}),
      makeMatrix({{1, 50}, {50, 1}}),
  };
  for (const auto& m : matrices) {
    const double pr = timingPredictability(m).value;
    EXPECT_LE(pr, stateInducedPredictability(m).value + 1e-12);
    EXPECT_LE(pr, inputInducedPredictability(m).value + 1e-12);
  }
}

TEST(Definitions, SubsettingImprovesPredictability) {
  // "Extent of uncertainty" refinement (Section 2): shrinking Q or I can
  // only raise Pr (min over fewer pairs).
  const auto m = makeMatrix({{10, 20, 30}, {40, 15, 22}, {9, 33, 18}});
  const auto full = timingPredictability(m);
  const auto sub =
      timingPredictability(m, {0, 1}, {0, 1});
  EXPECT_GE(sub.value, full.value);
  const auto single = timingPredictability(m, {1}, {1});
  EXPECT_DOUBLE_EQ(single.value, 1.0);
}

TEST(Definitions, EmptySubsetThrows) {
  const auto m = makeMatrix({{10}});
  EXPECT_THROW(timingPredictability(m, {}, {0}), std::runtime_error);
}

TEST(Definitions, ZeroTimeRejected) {
  EXPECT_THROW(TimingMatrix::compute([](std::size_t, std::size_t) {
                 return Cycles{0};
               }, 1, 1),
               std::runtime_error);
}

TEST(Definitions, SampledOverestimatesExhaustive) {
  // Deterministic synthetic T: a single extreme pair that sampling misses
  // with high probability when given few samples.
  auto fn = [](std::size_t q, std::size_t i) -> Cycles {
    if (q == 999 && i == 999) return 1000;
    return 100 + (q + i) % 10;
  };
  const auto sampled = sampledTimingPredictability(fn, 1000, 1000, 50, 7);
  EXPECT_EQ(sampled.provenance, Inherence::Sampled);
  // Exhaustive Pr = 100/1000 = 0.1; sampled (over a subset) must be >= it.
  EXPECT_GE(sampled.value, 0.1);
}

TEST(Definitions, BcetWcetEndpoints) {
  const auto m = makeMatrix({{10, 20}, {40, 15}});
  EXPECT_EQ(m.bcet(), 10u);
  EXPECT_EQ(m.wcet(), 40u);
}

TEST(Measures, StatsBasics) {
  const auto s = computeStats(std::vector<double>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.minimum, 1);
  EXPECT_DOUBLE_EQ(s.maximum, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.variance, 1.25);
  EXPECT_DOUBLE_EQ(s.range(), 3);
  EXPECT_DOUBLE_EQ(s.ratio(), 0.25);
}

TEST(Measures, StatsOfConstantSeriesHasZeroVariance) {
  const auto s = computeStats(std::vector<Cycles>{7, 7, 7, 7});
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.ratio(), 1.0);
}

TEST(Measures, BoundsDecompositionInvariants) {
  BoundsDecomposition d;
  d.lowerBound = 80;
  d.bcet = 100;
  d.wcet = 150;
  d.upperBound = 180;
  EXPECT_TRUE(d.wellFormed());
  EXPECT_EQ(d.inherentVariance(), 50u);
  EXPECT_EQ(d.abstractionVariance(), 50u);
  EXPECT_DOUBLE_EQ(d.overestimationFactor(), 1.2);
  d.upperBound = 140;  // UB < WCET: unsound
  EXPECT_FALSE(d.wellFormed());
}

TEST(Measures, HistogramBucketsAndRender) {
  Histogram h(0, 100, 10);
  for (Cycles v = 0; v < 100; ++v) h.add(v);
  EXPECT_EQ(h.total(), 100u);
  for (std::size_t b = 0; b < h.buckets(); ++b) EXPECT_EQ(h.count(b), 10u);
  const auto text = h.render(20);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(Measures, HistogramDegenerateRange) {
  Histogram h(5, 5, 4);  // empty range collapses to one bucket
  h.add(5);
  EXPECT_EQ(h.buckets(), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Domino, LinearDivergenceDetected) {
  DominoSeries s;
  for (std::uint64_t n = 1; n <= 16; ++n) {
    s.n.push_back(n);
    s.timeFromQ1.push_back(9 * n + 1);
    s.timeFromQ2.push_back(12 * n);
  }
  const auto v = detectDomino(s);
  EXPECT_TRUE(v.dominoEffect);
  EXPECT_NEAR(v.diffSlope, 3.0, 0.05);
  EXPECT_NEAR(v.limitRatio, 9.0 / 12.0, 0.01);
}

TEST(Domino, BoundedDifferenceIsNotDomino) {
  DominoSeries s;
  for (std::uint64_t n = 1; n <= 16; ++n) {
    s.n.push_back(n);
    s.timeFromQ1.push_back(10 * n);
    s.timeFromQ2.push_back(10 * n + 3);  // constant offset, bounded
  }
  const auto v = detectDomino(s);
  EXPECT_FALSE(v.dominoEffect);
}

TEST(Domino, MalformedSeriesThrows) {
  DominoSeries s;
  s.n = {1};
  s.timeFromQ1 = {10};
  s.timeFromQ2 = {12};
  EXPECT_THROW(detectDomino(s), std::runtime_error);
}

TEST(Domino, FitSlope) {
  EXPECT_NEAR(fitSlope({1, 2, 3}, {2, 4, 6}), 2.0, 1e-9);
  EXPECT_THROW(fitSlope({1}, {2}), std::runtime_error);
  EXPECT_THROW(fitSlope({1, 1}, {2, 3}), std::runtime_error);
}

TEST(Template, TableRowRendersAllAspects) {
  PredictabilityInstance inst;
  inst.approach = "Method Cache";
  inst.hardwareUnit = "Memory hierarchy";
  inst.citation = "[23,15]";
  inst.spec.property = Property::MemoryAccessLatency;
  inst.spec.uncertainties = {Uncertainty::InitialCacheState};
  inst.spec.measure = MeasureKind::AnalysisSimplicity;
  const auto row = tableRow(inst);
  EXPECT_NE(row.find("Method Cache"), std::string::npos);
  EXPECT_NE(row.find("memory access latency"), std::string::npos);
  EXPECT_NE(row.find("initial cache state"), std::string::npos);
  EXPECT_NE(row.find("analysis simplicity"), std::string::npos);
}

TEST(Template, TableRowRendersExecutableBinding) {
  PredictabilityInstance inst;
  inst.approach = "Approach";
  inst.hardwareUnit = "Unit";
  inst.citation = "[1]";
  inst.spec.workload = "bubblesort-8";
  inst.spec.platforms = {"ooo-fifo", "inorder-lru"};
  const auto row = tableRow(inst);
  EXPECT_NE(row.find("bubblesort-8 on ooo-fifo/inorder-lru"),
            std::string::npos);
  EXPECT_NE(row.find("(exhaustive)"), std::string::npos);
}

TEST(Template, EnumPrintersTotal) {
  for (int p = 0; p <= static_cast<int>(Property::CacheHits); ++p) {
    EXPECT_NE(toString(static_cast<Property>(p)), "?");
  }
  for (int u = 0; u <= static_cast<int>(Uncertainty::AnalysisImprecision);
       ++u) {
    EXPECT_NE(toString(static_cast<Uncertainty>(u)), "?");
  }
  for (int m = 0; m <= static_cast<int>(MeasureKind::AnalysisSimplicity);
       ++m) {
    EXPECT_NE(toString(static_cast<MeasureKind>(m)), "?");
  }
}

TEST(Report, TextTableAligns) {
  TextTable t({"a", "bb"});
  t.addRow({"xxx", "y"});
  t.addRule();
  t.addRow({"1", "22222"});
  const auto out = t.render();
  EXPECT_NE(out.find("| xxx"), std::string::npos);
  EXPECT_NE(out.find("+--"), std::string::npos);
}

TEST(Report, FmtPrecision) {
  EXPECT_EQ(fmt(0.75, 2), "0.75");
  EXPECT_EQ(fmt(1.0, 1), "1.0");
  EXPECT_NE(fmtVsBaseline(2.0, 4.0).find("0.50x"), std::string::npos);
}

}  // namespace
}  // namespace pred::core
