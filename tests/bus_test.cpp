// bus_test.cpp — Shared-bus memory models (Wilhelm et al. [29]: "latencies
// of bus transfers" under concurrent applications; Table 1 row 7).

#include <gtest/gtest.h>

#include <set>

#include "isa/ast.h"
#include "isa/exec.h"
#include "isa/workloads.h"
#include "pipeline/inorder.h"
#include "pipeline/memory_iface.h"

namespace pred::pipeline {
namespace {

TEST(SharedBus, FirstAccessAtPhaseZeroIsFast) {
  SharedBusMemory bus(3, 4, 2);
  EXPECT_EQ(bus.access(0), 3u + 2u);  // no wait at phase 0
}

TEST(SharedBus, WorstCaseWithinBound) {
  SharedBusMemory bus(3, 4, 2);
  Cycles worst = 0;
  for (int k = 0; k < 100; ++k) worst = std::max(worst, bus.access(k));
  EXPECT_LE(worst, bus.latencyBound());
}

TEST(SharedBus, LatencyIndependentOfAddress) {
  SharedBusMemory a(3, 4, 2);
  SharedBusMemory b(3, 4, 2);
  for (int k = 0; k < 50; ++k) {
    EXPECT_EQ(a.access(k), b.access(k * 977 + 13));
  }
}

TEST(SharedBus, ResetClockRestoresPhase) {
  SharedBusMemory bus(3, 4, 2);
  const auto first = bus.access(0);
  bus.access(1);
  bus.resetClock();
  EXPECT_EQ(bus.access(0), first);
}

TEST(ContendedBus, DelayPatternApplies) {
  ContendedBusMemory bus(2, {0, 5, 1});
  EXPECT_EQ(bus.access(0), 2u);
  EXPECT_EQ(bus.access(0), 7u);
  EXPECT_EQ(bus.access(0), 3u);
  EXPECT_EQ(bus.access(0), 2u);  // pattern wraps
}

TEST(ContendedBus, EmptyPatternIsFixedLatency) {
  ContendedBusMemory bus(4, {});
  for (int k = 0; k < 5; ++k) EXPECT_EQ(bus.access(k), 4u);
}

TEST(BusExperiment, TdmBusTimeContextIndependent) {
  // Table 1 row 7 shape: program time over a TDM bus is one number; over a
  // contended bus it varies with the co-runner delay pattern.
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(16));
  const auto trace = isa::FunctionalCore::run(prog, isa::Input{}).trace;

  std::set<Cycles> tdmTimes;
  for (int context = 0; context < 4; ++context) {
    // Co-runner context CANNOT appear anywhere in the TDM model: same time.
    SharedBusMemory bus(3, 4, 2);
    InOrderPipeline pipe(InOrderConfig{}, &bus);
    tdmTimes.insert(pipe.run(trace));
  }
  EXPECT_EQ(tdmTimes.size(), 1u);

  std::set<Cycles> contendedTimes;
  const std::vector<std::vector<Cycles>> contexts = {
      {}, {1, 0, 2}, {7, 7}, {0, 0, 0, 12}};
  for (const auto& pattern : contexts) {
    ContendedBusMemory bus(2, pattern);
    InOrderPipeline pipe(InOrderConfig{}, &bus);
    contendedTimes.insert(pipe.run(trace));
  }
  EXPECT_GT(contendedTimes.size(), 1u);
}

TEST(BusExperiment, TdmBusSlowerButBounded) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(16));
  const auto trace = isa::FunctionalCore::run(prog, isa::Input{}).trace;
  SharedBusMemory tdm(3, 4, 2);
  InOrderPipeline tdmPipe(InOrderConfig{}, &tdm);
  ContendedBusMemory uncontended(2, {});
  InOrderPipeline fastPipe(InOrderConfig{}, &uncontended);
  // TDM costs throughput versus the uncontended ideal — the usual
  // composability-for-performance trade.
  EXPECT_GE(tdmPipe.run(trace), fastPipe.run(trace));
}

}  // namespace
}  // namespace pred::pipeline
