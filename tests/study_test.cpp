// study_test.cpp — The query front door: round-trip bit-identity against
// the legacy core:: evaluators, workload registry behavior, catalog
// integrity, golden-file sink output (RFC-4180 / JSON escaping), and
// registry thread-safety.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <type_traits>

#include "exp/trace_store.h"
#include "isa/ast.h"
#include "isa/workloads.h"
#include "study/catalog.h"
#include "study/query.h"
#include "study/scenario.h"

namespace pred::study {
namespace {

// The exp layer shares core's cycle type (no shadow alias).
static_assert(std::is_same_v<exp::Cycles, core::Cycles>);
static_assert(std::is_same_v<exp::Cycles, std::uint64_t>);

/// Witness-for-witness equality: same quotient, same times, same indices,
/// same provenance — the "bit-identical to the legacy evaluators" claim.
void expectIdentical(const core::PredictabilityValue& a,
                     const core::PredictabilityValue& b) {
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.minTime, b.minTime);
  EXPECT_EQ(a.maxTime, b.maxTime);
  EXPECT_EQ(a.q1, b.q1);
  EXPECT_EQ(a.i1, b.i1);
  EXPECT_EQ(a.q2, b.q2);
  EXPECT_EQ(a.i2, b.i2);
  EXPECT_EQ(a.provenance, b.provenance);
}

struct SmallSystem {
  isa::Program prog;
  std::vector<isa::Input> inputs;
  exp::PlatformOptions opts;
};

SmallSystem smallSystem() {
  SmallSystem s;
  s.prog = isa::ast::compileBranchy(isa::workloads::linearSearch(6));
  s.inputs = isa::workloads::randomArrayInputs(s.prog, "a", 6, 4, 5);
  for (auto& in : s.inputs) {
    in = isa::mergeInputs(in, isa::varInput(s.prog, "key", 1));
  }
  s.opts.numStates = 4;
  return s;
}

TEST(Query, ExhaustiveResultsBitIdenticalToLegacyEvaluators) {
  const auto s = smallSystem();

  // Legacy path: platform -> engine matrix -> core evaluators.
  const auto model =
      exp::PlatformRegistry::instance().make("inorder-fifo", s.prog, s.opts);
  exp::ExperimentEngine direct;
  const auto matrix = direct.computeMatrix(*model, s.prog, s.inputs);

  // Query path on the same workload/platform/options.
  exp::ExperimentEngine engine;
  const auto f = Query()
                     .workload("w", s.prog, s.inputs)
                     .platform("inorder-fifo", s.opts)
                     .keepMatrix()
                     .run(engine);

  ASSERT_TRUE(f.matrix.has_value());
  EXPECT_TRUE(*f.matrix == matrix);
  EXPECT_EQ(f.bcet, matrix.bcet());
  EXPECT_EQ(f.wcet, matrix.wcet());
  expectIdentical(f.pr, core::timingPredictability(matrix));
  expectIdentical(f.sipr, core::stateInducedPredictability(matrix));
  expectIdentical(f.iipr, core::inputInducedPredictability(matrix));
}

TEST(Query, RestrictedUncertaintyMatchesLegacySubsetEvaluators) {
  const auto s = smallSystem();
  const auto model =
      exp::PlatformRegistry::instance().make("inorder-lru", s.prog, s.opts);
  exp::ExperimentEngine direct;
  const auto matrix = direct.computeMatrix(*model, s.prog, s.inputs);

  const std::vector<std::size_t> qs = {0, 2};
  const std::vector<std::size_t> is = {1, 3};
  exp::ExperimentEngine engine;
  const auto f = Query()
                     .workload("w", s.prog, s.inputs)
                     .platform("inorder-lru", s.opts)
                     .uncertainty(qs, is)
                     .run(engine);

  expectIdentical(f.pr, core::timingPredictability(matrix, qs, is));
  expectIdentical(f.sipr, core::stateInducedPredictability(matrix, qs, is));
  expectIdentical(f.iipr, core::inputInducedPredictability(matrix, qs, is));

  // Subsets can only raise Pr (Section 2's extent-of-uncertainty argument).
  const auto full = core::timingPredictability(matrix);
  EXPECT_GE(f.pr.value, full.value);
}

TEST(Definitions, RestrictedEvaluatorsOnFullSetsMatchUnrestricted) {
  const auto s = smallSystem();
  const auto model =
      exp::PlatformRegistry::instance().make("inorder-fifo", s.prog, s.opts);
  exp::ExperimentEngine engine;
  const auto m = engine.computeMatrix(*model, s.prog, s.inputs);

  std::vector<std::size_t> qs(m.numStates()), is(m.numInputs());
  for (std::size_t q = 0; q < m.numStates(); ++q) qs[q] = q;
  for (std::size_t i = 0; i < m.numInputs(); ++i) is[i] = i;

  expectIdentical(core::stateInducedPredictability(m, qs, is),
                  core::stateInducedPredictability(m));
  expectIdentical(core::inputInducedPredictability(m, qs, is),
                  core::inputInducedPredictability(m));
  expectIdentical(core::timingPredictability(m, qs, is),
                  core::timingPredictability(m));
}

TEST(Query, SampledModeOverestimatesAndIsReproducible) {
  const auto s = smallSystem();
  exp::ExperimentEngine engine;
  const auto base = Query()
                        .workload("w", s.prog, s.inputs)
                        .platform("inorder-lru", s.opts);

  auto sampledQuery = base;
  sampledQuery.mode(Sampled{8, 42});
  const auto sampled = sampledQuery.run(engine);
  const auto exhaustive = base.run(engine);

  EXPECT_EQ(sampled.provenance, core::Inherence::Sampled);
  EXPECT_EQ(sampled.mode, core::EvalMode::Sampled);
  EXPECT_EQ(sampled.requested, std::vector<Measure>{Measure::Pr});
  EXPECT_FALSE(sampled.has(Measure::SIPr));
  EXPECT_THROW(sampled.value(Measure::SIPr), std::logic_error);
  // min over a subset >= min over the full set.
  EXPECT_GE(sampled.pr.value, exhaustive.pr.value);

  const auto again = sampledQuery.run(engine);
  expectIdentical(sampled.pr, again.pr);

  // Explicitly requesting a non-Pr measure under sampling is an error, not
  // a silently narrowed result.
  auto bad = base;
  bad.measures({Measure::SIPr}).mode(Sampled{8, 42});
  EXPECT_THROW(bad.run(engine), std::invalid_argument);

  // Sampling never materializes the matrix, so keepMatrix is an error too.
  auto badMatrix = base;
  badMatrix.mode(Sampled{8, 42}).keepMatrix();
  EXPECT_THROW(badMatrix.run(engine), std::invalid_argument);
}

TEST(Query, AnalysisBoundsModeAttachesWellFormedDecomposition) {
  const auto s = smallSystem();
  exp::ExperimentEngine engine;
  const auto f = Query()
                     .workload("w", s.prog, s.inputs)
                     .platform("inorder-lru", s.opts)
                     .mode(AnalysisBounds{})
                     .run(engine);
  ASSERT_TRUE(f.bounds.has_value());
  EXPECT_TRUE(f.bounds->wellFormed());
  EXPECT_EQ(f.bounds->bcet, f.bcet);
  EXPECT_EQ(f.bounds->wcet, f.wcet);
  // Exhaustive measures still carry inherent provenance.
  EXPECT_EQ(f.provenance, core::Inherence::Exhaustive);
}

TEST(Query, AnalysisBoundsRejectsUnmodeledPlatforms) {
  const auto s = smallSystem();
  exp::ExperimentEngine engine;
  EXPECT_THROW(Query()
                   .workload("w", s.prog, s.inputs)
                   .platform("pret", s.opts)
                   .mode(AnalysisBounds{})
                   .run(engine),
               std::invalid_argument);
}

TEST(Query, DeclarationErrorsAreRejectedEagerly) {
  EXPECT_THROW(Query().workload("no-such-workload"), std::invalid_argument);
  EXPECT_THROW(Query().platform("no-such-platform"), std::invalid_argument);
  EXPECT_THROW(Query().measures({}), std::invalid_argument);
  EXPECT_THROW(Query().mode(Sampled{0, 1}), std::invalid_argument);

  exp::ExperimentEngine engine;
  EXPECT_THROW(Query().platform("inorder-lru").run(engine),
               std::invalid_argument);  // no workload
  EXPECT_THROW(Query().workload("sum-16").run(engine),
               std::invalid_argument);  // no platform
  EXPECT_THROW(Query().workload("sum-16").runAll(engine),
               std::invalid_argument);
  EXPECT_THROW(Query()
                   .workload("sum-16")
                   .platform("inorder-scratchpad")
                   .uncertainty({99}, {})
                   .run(engine),
               std::invalid_argument);  // subset out of range
}

TEST(WorkloadRegistry, PresetsAreValidAndSorted) {
  auto& reg = WorkloadRegistry::instance();
  const auto names = reg.names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* name :
       {"sum-16", "sum-24", "sum-32", "linearsearch-12", "linearsearch-12-sp",
        "linearsearch-16x64", "linearsearch-16x64-dup",
        "bubblesort-8", "bubblesort-8-sp", "bubblesort-10", "branchtree-5",
        "branchtree-5-sp", "matmul-4", "divkernel-8",
        "divkernel-12-magnitudes", "heapmix-8", "callroundrobin-8x6x4"}) {
    ASSERT_NE(reg.find(name), nullptr) << name;
    const auto w = reg.make(name);
    EXPECT_FALSE(w.inputs.empty()) << name;
    EXPECT_EQ(w.program.validate(), std::nullopt) << name;
  }
}

TEST(WorkloadRegistry, RejectsDuplicatesAndUnknownNames) {
  WorkloadRegistry fresh;
  EXPECT_THROW(fresh.add(Workload{"sum-16", "dup", nullptr}),
               std::invalid_argument);
  EXPECT_THROW(fresh.make("no-such-workload"), std::invalid_argument);
  EXPECT_EQ(fresh.find("no-such-workload"), nullptr);
  fresh.add(Workload{"custom", "a custom workload", [] {
                       return WorkloadInstance{
                           isa::ast::compileBranchy(
                               isa::workloads::sumLoop(2)),
                           {isa::Input{}}};
                     }});
  EXPECT_NE(fresh.find("custom"), nullptr);
  EXPECT_EQ(fresh.make("custom").inputs.size(), 1u);
}

TEST(WorkloadRegistry, SinglePathSiblingsShareInputs) {
  auto& reg = WorkloadRegistry::instance();
  for (const char* base : {"linearsearch-12", "bubblesort-8",
                           "branchtree-5"}) {
    const auto branchy = reg.make(base);
    const auto sp = reg.make(std::string(base) + "-sp");
    ASSERT_EQ(branchy.inputs.size(), sp.inputs.size()) << base;
    for (std::size_t k = 0; k < branchy.inputs.size(); ++k) {
      EXPECT_TRUE(branchy.inputs[k] == sp.inputs[k]) << base;
    }
  }
}

TEST(WorkloadRegistry, NamesDeterministicallyPinProgramAndLayout) {
  // The grid result cache keys jobs by workload NAME
  // (exp::canonicalResultIdentity / grid::jobFingerprint): that is sound
  // only if a name fully determines the program — code AND MemoryLayout,
  // since the layout's bases steer split-cache routing and memWords sets
  // the address wrap — plus the input set.  Every preset must be a pure
  // factory: two make() calls, field-identical results.
  auto& reg = WorkloadRegistry::instance();
  for (const auto& name : reg.names()) {
    const auto a = reg.make(name);
    const auto b = reg.make(name);
    EXPECT_EQ(exp::programFingerprint(a.program),
              exp::programFingerprint(b.program))
        << name;
    EXPECT_EQ(a.program.layout.staticBase, b.program.layout.staticBase)
        << name;
    EXPECT_EQ(a.program.layout.stackBase, b.program.layout.stackBase)
        << name;
    EXPECT_EQ(a.program.layout.heapBase, b.program.layout.heapBase) << name;
    EXPECT_EQ(a.program.layout.memWords, b.program.layout.memWords) << name;
    ASSERT_EQ(a.inputs.size(), b.inputs.size()) << name;
    for (std::size_t k = 0; k < a.inputs.size(); ++k) {
      EXPECT_TRUE(a.inputs[k] == b.inputs[k]) << name << " input " << k;
    }
  }
}

TEST(WorkloadRegistry, DupPresetIsDuplicateHeavy) {
  // linearsearch-16x64-dup: 16 base arrays with 16 distinct planted scan
  // lengths x 4 trace-equal variants each.  The renamed variant shares
  // its store key with the base (Input equality ignores names), so 64
  // inputs hit 48 store entries; every variant is trace-equal to its
  // base, so EXACTLY 16 trace classes — four inputs per class, which is
  // the whole point of the collapse grid.
  const auto w =
      WorkloadRegistry::instance().make("linearsearch-16x64-dup");
  ASSERT_EQ(w.inputs.size(), 64u);
  exp::TraceStore store;
  for (const auto& in : w.inputs) store.traceRefFor(w.program, in);
  EXPECT_EQ(store.size(), 48u);
  EXPECT_EQ(store.classCount(), 16u);
}

TEST(Registries, ConcurrentAddAndFindAreSafe) {
  exp::PlatformRegistry platforms;
  WorkloadRegistry workloads;
  constexpr int kThreads = 8, kPerThread = 25;
  std::atomic<int> readMisses{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (int k = 0; k < kPerThread; ++k) {
        const auto id = std::to_string(t) + "-" + std::to_string(k);
        platforms.add(exp::Platform{"p" + id, "concurrent", nullptr});
        workloads.add(Workload{"w" + id, "concurrent", nullptr});
        // Reads interleave with writes from the other threads.
        if (platforms.find("inorder-lru") == nullptr) ++readMisses;
        if (workloads.find("sum-16") == nullptr) ++readMisses;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(readMisses.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    for (int k = 0; k < kPerThread; ++k) {
      const auto id = std::to_string(t) + "-" + std::to_string(k);
      EXPECT_NE(platforms.find("p" + id), nullptr);
      EXPECT_NE(workloads.find("w" + id), nullptr);
    }
  }
}

TEST(Catalog, AllThirteenRowsRenderAsTemplateRows) {
  EXPECT_EQ(catalog::table1().size(), 7u);
  EXPECT_EQ(catalog::table2().size(), 6u);
  for (const auto* table : {&catalog::table1(), &catalog::table2()}) {
    for (const auto& inst : *table) {
      const auto row = core::tableRow(inst);
      EXPECT_NE(row.find(inst.approach), std::string::npos);
      EXPECT_NE(row.find(inst.citation), std::string::npos);
      EXPECT_FALSE(inst.spec.uncertainties.empty()) << inst.approach;
    }
  }
}

TEST(Catalog, BoundRowsResolveAgainstTheRegistries) {
  for (const auto* table : {&catalog::table1(), &catalog::table2()}) {
    for (const auto& inst : *table) {
      if (inst.spec.workload.empty()) continue;
      EXPECT_NE(WorkloadRegistry::instance().find(inst.spec.workload),
                nullptr)
          << inst.approach;
      for (const auto& p : inst.spec.platforms) {
        EXPECT_NE(exp::PlatformRegistry::instance().find(p), nullptr)
            << inst.approach << " / " << p;
      }
      if (!inst.spec.platforms.empty()) {
        EXPECT_NO_THROW(compile(inst.spec)) << inst.approach;
      }
    }
  }
}

TEST(Catalog, DeclarativeOnlyRowsDoNotCompile) {
  EXPECT_THROW(compile(catalog::row("CoMPSoC").spec), std::invalid_argument);
  EXPECT_THROW(compile(catalog::row("Burst DRAM refresh").spec),
               std::invalid_argument);
}

TEST(Catalog, SinglePathRowRunsEndToEnd) {
  exp::ExperimentEngine engine;
  const auto f = compile(catalog::row("Single-path").spec).run(engine);
  EXPECT_EQ(f.numStates, 1u);
  EXPECT_LT(f.iipr.value, 1.0);  // the branchy compilation varies with input
  EXPECT_EQ(f.workload, "linearsearch-12");
}

TEST(StudyReport, CsvGoldenFileWithHostileNames) {
  exp::ExperimentEngine engine;
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(4));
  exp::PlatformOptions opts;
  opts.numStates = 1;
  const auto f = Query()
                     .workload("search, \"warm\"", prog, {isa::Input{}})
                     .platform("inorder-scratchpad", opts)
                     .run(engine);
  const auto t = std::to_string(f.bcet);  // 1x1 matrix: bcet == wcet
  const std::string expected =
      "workload,platform,num_states,num_inputs,bcet,wcet,pr,sipr,iipr,mode,"
      "lb,ub\n"
      "\"search, \"\"warm\"\"\",inorder-scratchpad,1,1," +
      t + "," + t + ",1.000000,1.000000,1.000000,exhaustive,,\n";
  EXPECT_EQ(StudyReport::csv({f}), expected);
}

TEST(StudyReport, JsonGoldenFileWithHostileNames) {
  exp::ExperimentEngine engine;
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(4));
  exp::PlatformOptions opts;
  opts.numStates = 1;
  const auto f = Query()
                     .workload("line\nbreak \"q\"", prog, {isa::Input{}})
                     .platform("inorder-scratchpad", opts)
                     .measures({Measure::Pr})
                     .run(engine);
  const auto t = std::to_string(f.bcet);
  const std::string expected =
      "[\n  {\"workload\": \"line\\nbreak \\\"q\\\"\", "
      "\"platform\": \"inorder-scratchpad\", \"num_states\": 1, "
      "\"num_inputs\": 1, \"bcet\": " + t + ", \"wcet\": " + t +
      ", \"pr\": 1.000000, \"mode\": \"exhaustive\"}\n]\n";
  EXPECT_EQ(StudyReport::json({f}), expected);
}

TEST(StudyReport, TableRendersRequestedMeasuresOnly) {
  exp::ExperimentEngine engine;
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(4));
  exp::PlatformOptions opts;
  opts.numStates = 1;
  const auto f = Query()
                     .workload("w", prog, {isa::Input{}})
                     .platform("inorder-scratchpad", opts)
                     .measures({Measure::IIPr})
                     .run(engine);
  const auto table = StudyReport::table({f});
  EXPECT_NE(table.find("IIPr"), std::string::npos);
  EXPECT_NE(table.find("exhaustive"), std::string::npos);
  const auto csv = StudyReport::csv({f});
  // Un-requested Pr/SIPr render as empty CSV fields.
  EXPECT_NE(csv.find(",,1.000000,exhaustive"), std::string::npos);
}

TEST(Query, SpecStaysInStepWithExplicitPlatformOptions) {
  // The declarative form must describe what run() executes: |Q| requested
  // through per-platform options round-trips through spec().
  exp::PlatformOptions o;
  o.numStates = 16;
  Query q;
  q.workload("sum-16").platform("inorder-lru", o);
  EXPECT_EQ(q.spec().numStates, 16);
}

TEST(Query, RunAllCrossesPlatformsInDeclarationOrder) {
  exp::ExperimentEngine engine;
  exp::PlatformOptions opts;
  opts.numStates = 2;
  const auto report = Query()
                          .workload("sum-16")
                          .platform("inorder-scratchpad", opts)
                          .platform("pret", opts)
                          .runAll(engine);
  ASSERT_EQ(report.findings.size(), 2u);
  EXPECT_EQ(report.findings[0].platform, "inorder-scratchpad");
  EXPECT_EQ(report.findings[1].platform, "pret");
  EXPECT_EQ(report.findings[0].workload, "sum-16");
}

}  // namespace
}  // namespace pred::study
