// integration_test.cpp — End-to-end miniatures of the paper's experiments:
// each test asserts the SHAPE a bench regenerates (who is more predictable,
// in which measure), wiring several modules together.

#include <gtest/gtest.h>

#include "analysis/exhaustive.h"
#include "analysis/wcet_bounds.h"
#include "branch/dynamic.h"
#include "branch/static_schemes.h"
#include "cache/method_cache.h"
#include "cache/mustmay.h"
#include "core/definitions.h"
#include "core/measures.h"
#include "isa/ast.h"
#include "isa/singlepath.h"
#include "isa/workloads.h"
#include "pipeline/inorder.h"
#include "pipeline/memory_iface.h"
#include "pipeline/ooo.h"
#include "pipeline/vtrace.h"

namespace pred {
namespace {

using core::Cycles;

isa::Trace traceOf(const isa::Program& p, const isa::Input& in = {}) {
  auto r = isa::FunctionalCore::run(p, in);
  EXPECT_TRUE(r.completed);
  return r.trace;
}

// E15 miniature: single-path raises IIPr to 1 on uniform-latency hardware.
TEST(Integration, SinglePathMakesIIPrOne) {
  const auto ast = isa::workloads::linearSearch(8);
  const auto branchy = isa::ast::compileBranchy(ast);
  const auto single = isa::ast::compileSinglePath(ast);

  auto iipr = [&](const isa::Program& prog) {
    auto inputs = isa::workloads::randomArrayInputs(prog, "a", 8, 6, 77, 8);
    for (auto& in : inputs) {
      in = isa::mergeInputs(in, isa::varInput(prog, "key", 2));
    }
    pipeline::InOrderConfig cfg;
    cfg.constantDiv = true;
    auto setup = analysis::exhaustiveInOrder(
        prog, inputs, cache::CacheGeometry{4, 8, 2}, cache::Policy::LRU,
        cache::CacheTiming{2, 2}, 1, 5, cfg);
    return core::inputInducedPredictability(setup.matrix).value;
  };
  EXPECT_LT(iipr(branchy), 1.0);
  EXPECT_DOUBLE_EQ(iipr(single), 1.0);
}

// E9 miniature: LRU gives better (or equal) state-induced predictability
// than FIFO/PLRU on a loop workload, and scratchpad (fixed latency) gives 1.
TEST(Integration, StateInducedPredictabilityOrdering) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(16));
  const std::vector<isa::Input> inputs{isa::Input{}};

  auto sipr = [&](cache::Policy policy) {
    auto setup = analysis::exhaustiveInOrder(
        prog, inputs, cache::CacheGeometry{4, 8, 2}, policy,
        cache::CacheTiming{1, 12}, 8, 41, pipeline::InOrderConfig{});
    return core::stateInducedPredictability(setup.matrix).value;
  };
  const double lru = sipr(cache::Policy::LRU);
  EXPECT_LT(lru, 1.0);  // caches do induce state variability

  // Scratchpad: no state at all.
  const auto t = traceOf(prog);
  pipeline::FixedLatencyMemory spm(6);
  pipeline::InOrderPipeline pipe(pipeline::InOrderConfig{}, &spm);
  const auto t1 = pipe.run(t);
  const auto t2 = pipe.run(t);
  EXPECT_EQ(t1, t2);
}

// E4 miniature: the preschedule mode trades throughput for zero
// state-induced variability of the whole program.
TEST(Integration, PrescheduleEliminatesVariabilityAtThroughputCost) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::bubbleSort(5));
  isa::Cfg cfg(prog);
  std::set<std::int32_t> leaders;
  for (const auto& bb : cfg.blocks()) leaders.insert(bb.begin);
  const auto inputs = isa::workloads::randomArrayInputs(prog, "a", 5, 2, 3, 8);
  pipeline::FixedLatencyMemory mem(2);
  pipeline::OooPipeline pipe(pipeline::OooConfig{}, &mem);

  std::vector<pipeline::OooInitialState> states;
  for (Cycles a = 0; a <= 3; ++a) {
    for (Cycles b = 0; b <= 3; ++b) states.push_back({a, b, 0});
  }
  for (const auto& in : inputs) {
    const auto t = traceOf(prog, in);
    std::set<Cycles> plain, drained;
    Cycles plainBest = ~Cycles{0};
    Cycles drainedBest = ~Cycles{0};
    for (const auto& q : states) {
      const auto tp = pipe.run(t, q, nullptr);
      const auto td = pipe.run(t, q, &leaders);
      plain.insert(tp);
      drained.insert(td);
      plainBest = std::min(plainBest, tp);
      drainedBest = std::min(drainedBest, td);
    }
    EXPECT_EQ(drained.size(), 1u);       // predictable mode: no variability
    EXPECT_GE(*drained.begin(), plainBest);  // but never faster than OoO best
  }
}

// E8 miniature: virtual traces make path time state-independent while the
// plain OoO pipeline varies.
TEST(Integration, VirtualTracesRemoveStateDependence) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::matMul(3));
  isa::Cfg cfg(prog);
  const auto t = traceOf(prog);

  pipeline::FixedLatencyMemory mem(2);
  pipeline::OooPipeline ooo(pipeline::OooConfig{}, &mem);
  std::set<Cycles> oooTimes;
  for (Cycles a = 0; a <= 4; ++a) oooTimes.insert(ooo.run(t, {a, 0, 0}));

  pipeline::VirtualTracePipeline vt(pipeline::VirtualTraceConfig{},
                                    pipeline::computeTraceBoundaries(cfg, 12));
  // vt has no state axis: a single number per path.
  const auto vtTime = vt.run(t);
  EXPECT_EQ(vt.run(t), vtTime);
  EXPECT_GE(oooTimes.size(), 1u);
}

// E10 miniature: method cache misses only at call/return sites.
TEST(Integration, MethodCacheMissesOnlyAtCalls) {
  const auto prog =
      isa::ast::compileBranchy(isa::workloads::callRoundRobin(6, 4, 3));
  const auto t = traceOf(prog);

  cache::MethodCache mc(48, cache::MethodCacheTiming{});
  Cycles stall = 0;
  std::uint64_t missPoints = 0;
  // Walk the trace: CALL/RET enter a (possibly different) function.
  for (const auto& rec : t) {
    if (rec.instr.op == isa::Op::CALL || rec.instr.op == isa::Op::RET) {
      const auto fn = prog.functionAt(rec.nextPc);
      const int fnIdx = fn ? static_cast<int>(fn->entry) : -1;
      if (fnIdx >= 0) {
        const auto before = mc.misses();
        stall += mc.onEnter(fnIdx, fn->size());
        if (mc.misses() != before) ++missPoints;
      }
    }
  }
  EXPECT_GT(mc.misses(), 0u);
  EXPECT_GT(stall, 0u);
  // Static miss points: call/ret sites only — compare against a
  // conventional I-cache where EVERY instruction is a potential miss point.
  std::uint64_t callRetSites = 0;
  for (const auto& ins : prog.code) {
    if (ins.op == isa::Op::CALL || ins.op == isa::Op::RET) ++callRetSites;
  }
  EXPECT_LT(callRetSites, prog.size());
}

// E3 miniature: static prediction has a computable bound; dynamic
// prediction's misprediction count varies with initial table state.
TEST(Integration, StaticPredictionBoundVsDynamicVariability) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::bubbleSort(6));
  isa::Cfg cfg(prog);
  const auto inputs = isa::workloads::randomArrayInputs(prog, "a", 6, 4, 9, 32);

  auto scheme = branch::wcetOriented(cfg);
  const auto bound = branch::mispredictionBound(cfg, scheme);

  std::set<std::uint64_t> dynamicCounts;
  for (const auto& in : inputs) {
    const auto t = traceOf(prog, in);
    auto s = scheme;
    EXPECT_LE(branch::countMispredictions(t, s), bound);
    for (int init = 0; init <= 3; ++init) {
      branch::BimodalPredictor dyn(32, init);
      dynamicCounts.insert(branch::countMispredictions(t, dyn));
    }
  }
  EXPECT_GT(dynamicCounts.size(), 1u);
}

// Figure-1 miniature: the full decomposition is well-formed and each part
// is non-trivial on a workload with both input and state uncertainty.
TEST(Integration, Figure1DecompositionNonTrivial) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::linearSearch(8));
  isa::Cfg cfg(prog);
  analysis::BoundsInputs bi;
  bi.dataCacheGeom = cache::CacheGeometry{4, 8, 2};
  bi.cacheTiming = cache::CacheTiming{1, 10};

  auto inputs = isa::workloads::randomArrayInputs(prog, "a", 8, 6, 19, 8);
  for (auto& in : inputs) {
    in = isa::mergeInputs(in, isa::varInput(prog, "key", 3));
  }
  const auto setup = analysis::exhaustiveInOrder(
      prog, inputs, bi.dataCacheGeom, cache::Policy::LRU, bi.cacheTiming, 6,
      123, bi.pipeConfig);
  const auto d = analysis::figure1Decomposition(
      cfg, bi, setup.matrix.bcet(), setup.matrix.wcet());
  EXPECT_TRUE(d.wellFormed());
  EXPECT_GT(d.inherentVariance(), 0u);      // input+state spread
  EXPECT_GT(d.abstractionVariance(), 0u);   // analysis overestimation
  EXPECT_GT(d.overestimationFactor(), 1.0);
}

// Pr <= min(SIPr, IIPr) on real systems, not just synthetic matrices.
TEST(Integration, FactorizationInequalityOnRealSystem) {
  const auto prog = isa::ast::compileBranchy(isa::workloads::linearSearch(6));
  auto inputs = isa::workloads::randomArrayInputs(prog, "a", 6, 5, 3, 8);
  for (auto& in : inputs) {
    in = isa::mergeInputs(in, isa::varInput(prog, "key", 1));
  }
  const auto setup = analysis::exhaustiveInOrder(
      prog, inputs, cache::CacheGeometry{4, 8, 2}, cache::Policy::LRU,
      cache::CacheTiming{1, 10}, 5, 7, pipeline::InOrderConfig{});
  const double pr = core::timingPredictability(setup.matrix).value;
  EXPECT_LE(pr, core::stateInducedPredictability(setup.matrix).value + 1e-12);
  EXPECT_LE(pr, core::inputInducedPredictability(setup.matrix).value + 1e-12);
}

}  // namespace
}  // namespace pred
