// platform_test.cpp — The platform registry and its built-in presets: name
// round-trips, model construction, and the predictability shapes each
// preset is supposed to exhibit (the paper's claims as registry-level
// invariants).

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/definitions.h"
#include "exp/engine.h"
#include "exp/platform.h"
#include "isa/ast.h"
#include "isa/workloads.h"
#include "pipeline/pret.h"

namespace pred::exp {
namespace {

isa::Program testProgram() {
  return isa::ast::compileBranchy(isa::workloads::linearSearch(6));
}

std::vector<isa::Input> testInputs(const isa::Program& prog) {
  auto inputs = isa::workloads::randomArrayInputs(prog, "a", 6, 5, 3);
  for (auto& in : inputs) {
    in = isa::mergeInputs(in, isa::varInput(prog, "key", 2));
  }
  return inputs;
}

TEST(PlatformRegistry, RoundTripsEveryPresetName) {
  const auto& registry = PlatformRegistry::instance();
  const auto names = registry.names();
  ASSERT_GE(names.size(), 12u);
  const auto prog = testProgram();
  for (const auto& name : names) {
    const Platform* p = registry.find(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_EQ(p->name, name);
    EXPECT_FALSE(p->description.empty()) << name;
    PlatformOptions opts;
    opts.numStates = 4;
    const auto model = registry.make(name, prog, opts);
    ASSERT_NE(model, nullptr) << name;
    EXPECT_EQ(model->name(), name);
    EXPECT_GE(model->numStates(), 1u) << name;
    EXPECT_FALSE(model->stateLabel(0).empty()) << name;
  }
}

TEST(PlatformRegistry, ContainsTheDocumentedCorePresets) {
  const auto& registry = PlatformRegistry::instance();
  for (const char* name :
       {"inorder-lru", "ooo-fifo", "pret", "smt-rr", "smt-rtprio",
        "inorder-scratchpad", "inorder-lru-icache"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

TEST(PlatformRegistry, UnknownNameThrows) {
  EXPECT_THROW(
      PlatformRegistry::instance().make("no-such-platform", testProgram()),
      std::invalid_argument);
  EXPECT_EQ(PlatformRegistry::instance().find("no-such-platform"), nullptr);
}

TEST(PlatformRegistry, DuplicateRegistrationThrows) {
  PlatformRegistry fresh;  // local instance; shared one stays untouched
  EXPECT_THROW(fresh.add(Platform{"inorder-lru", "dup", nullptr}),
               std::invalid_argument);
  fresh.add(Platform{"custom", "a custom platform",
                     [](const isa::Program& p, const PlatformOptions& o) {
                       return PlatformRegistry::instance().make(
                           "inorder-scratchpad", p, o);
                     }});
  EXPECT_NE(fresh.find("custom"), nullptr);
}

TEST(Platforms, ScratchpadIsPerfectlyStatePredictable) {
  const auto prog = testProgram();
  const auto model =
      PlatformRegistry::instance().make("inorder-scratchpad", prog);
  EXPECT_EQ(model->numStates(), 1u);
  ExperimentEngine engine;
  const auto m = engine.computeMatrix(*model, prog, testInputs(prog));
  EXPECT_DOUBLE_EQ(core::stateInducedPredictability(m).value, 1.0);
}

TEST(Platforms, SmtRtPriorityShieldsTheRtThreadFromContexts) {
  // The RT-priority claim of Table 1 row 3: thread 0's time is the same in
  // every execution context, so SIPr = 1; under round-robin it is not.
  const auto prog = isa::ast::compileBranchy(isa::workloads::sumLoop(16));
  PlatformOptions opts;
  opts.numStates = 6;
  ExperimentEngine engine;
  const std::vector<isa::Input> inputs = {isa::Input{}};

  const auto prioModel =
      PlatformRegistry::instance().make("smt-rtprio", prog, opts);
  const auto mPrio = engine.computeMatrix(*prioModel, prog, inputs);
  ASSERT_GE(mPrio.numStates(), 4u);
  EXPECT_DOUBLE_EQ(core::stateInducedPredictability(mPrio).value, 1.0);

  const auto rrModel =
      PlatformRegistry::instance().make("smt-rr", prog, opts);
  const auto mRr = engine.computeMatrix(*rrModel, prog, inputs);
  EXPECT_LT(core::stateInducedPredictability(mRr).value, 1.0);
}

TEST(Platforms, PretSlotTimesMatchThePipelineClosedForm) {
  const auto prog = testProgram();
  const auto trace = isa::FunctionalCore::run(prog, isa::Input{}).trace;
  PlatformOptions opts;
  opts.numStates = 4;
  const auto model = PlatformRegistry::instance().make("pret", prog, opts);
  const pipeline::PretPipeline pipe(opts.pret);
  for (std::size_t q = 0; q < model->numStates(); ++q) {
    EXPECT_EQ(model->time(q, trace),
              pipe.threadTime(trace, static_cast<int>(q)));
  }
}

TEST(Platforms, PreschedulePresetRemovesOccupancySpread) {
  // Table 1 row 2 as a registry-level invariant: the plain fixed-latency
  // OoO preset varies with the occupancy residue; the preschedule preset
  // (drain at basic-block boundaries) does not.
  const auto prog = testProgram();
  PlatformOptions opts;
  opts.numStates = 15;
  ExperimentEngine engine;
  const auto inputs = testInputs(prog);

  const auto plain =
      PlatformRegistry::instance().make("ooo-fixedlat", prog, opts);
  EXPECT_EQ(plain->numStates(), 15u);
  const auto mPlain = engine.computeMatrix(*plain, prog, inputs);
  EXPECT_LT(core::stateInducedPredictability(mPlain).value, 1.0);

  const auto drained =
      PlatformRegistry::instance().make("ooo-preschedule", prog, opts);
  const auto mDrained = engine.computeMatrix(*drained, prog, inputs);
  EXPECT_DOUBLE_EQ(core::stateInducedPredictability(mDrained).value, 1.0);
  // The predictability is paid for in throughput.
  EXPECT_GE(mDrained.wcet(), mPlain.wcet());
}

TEST(Platforms, VirtualTracePresetHasSingleResetState) {
  const auto prog = testProgram();
  const auto model = PlatformRegistry::instance().make("vtrace", prog);
  EXPECT_EQ(model->numStates(), 1u);
  ExperimentEngine engine;
  const auto m = engine.computeMatrix(*model, prog, testInputs(prog));
  EXPECT_DOUBLE_EQ(core::stateInducedPredictability(m).value, 1.0);
}

TEST(Platforms, CachePresetStatesAreDistinctAndDeterministic) {
  const auto prog = testProgram();
  PlatformOptions opts;
  opts.numStates = 6;
  const auto& registry = PlatformRegistry::instance();
  const auto inputs = testInputs(prog);
  ExperimentEngine a, b;
  const auto modelA = registry.make("inorder-lru", prog, opts);
  const auto modelB = registry.make("inorder-lru", prog, opts);
  // Two independent instantiations agree exactly (enumeration is seeded).
  EXPECT_TRUE(a.computeMatrix(*modelA, prog, inputs) ==
              b.computeMatrix(*modelB, prog, inputs));
}

}  // namespace
}  // namespace pred::exp
