// grid_server.cpp — pred-grid-server: the multi-host grid service daemon.
//
// A thin argv shell over grid::GridServer (src/grid/server.h): parse
// flags, bind, print the resolved endpoint (scripts wait for that line),
// serve until a client sends Shutdown.  Two fleet shapes:
//
//   subprocess (default)   N persistent `pred-shard-worker serve`
//                          children over pipes; worker death is detected
//                          and survived (scheduler retry + respawn)
//   --in-process           in-process evaluator threads — no fork, handy
//                          for quick local use and debugging
//
// Either shape also accepts REMOTE workers dialing in with
// `pred-shard-worker attach` (on the main endpoint, or on a dedicated
// --worker-listen endpoint); --workers 0 runs attach-only, where every
// shard waits for dialed-in workers.
//
// --fault-first-worker-exit-after N arms the deterministic fault
// injection the CI grid-smoke uses: worker slot 0's first incarnation
// dies on receiving shard N+1; the job must still complete byte-identically.

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/wire.h"
#include "grid/faultpoint.h"
#include "grid/server.h"
#include "study/distributed.h"

namespace {

using namespace pred;

int usage() {
  std::fprintf(
      stderr,
      "pred-grid-server — grid service daemon (framed jobs over a socket)\n"
      "\n"
      "  pred-grid-server --listen unix:PATH|tcp:HOST:PORT\n"
      "                   [--worker-listen unix:PATH|tcp:HOST:PORT]\n"
      "                                            dedicated endpoint for\n"
      "                                            pred-shard-worker attach\n"
      "                                            (workers may also attach\n"
      "                                            on the main endpoint)\n"
      "                   [--workers N]            fixed worker slots\n"
      "                                            (default 2; 0 = attach-\n"
      "                                            only)\n"
      "                   [--worker-cmd PATH]      worker binary (default:\n"
      "                                            pred-shard-worker beside\n"
      "                                            this binary)\n"
      "                   [--in-process]           threads, not subprocesses\n"
      "                   [--cache-entries N]      result cache size\n"
      "                   [--cache-dir PATH]       crash-safe cache journal;\n"
      "                                            a restart with the same\n"
      "                                            dir serves the same hits\n"
      "                   [--conn-timeout-ms N]    drop connections stalled\n"
      "                                            this long (default 30000,\n"
      "                                            0 = never)\n"
      "                   [--max-attempts N]       per-shard retry budget\n"
      "                   [--retry-backoff-ms N]   base retry backoff\n"
      "                   [--shard-timeout-ms N]   per-shard kill timeout\n"
      "                   [--fault-first-worker-exit-after N]\n"
      "                                            arm fault injection\n"
      "                   [--fault-plan PLAN]      arm named fault points,\n"
      "                                            e.g. \"net.write:after=3:\n"
      "                                            epipe;cache.journal:torn\"\n"
      "\n"
      "Prints 'listening on <endpoint>' once ready; stops on a client\n"
      "Shutdown frame (pred-grid-client shutdown).\n");
  return 2;
}

template <typename T>
T flagNumber(const std::string& flag, const std::string& value) {
  std::istringstream in(value);
  const T v = core::wire::nextNumber<T>(in, "pred-grid-server", flag);
  std::string extra;
  if (in >> extra) {
    core::wire::fail("pred-grid-server",
                     "malformed " + flag + ": '" + value + "'");
  }
  return v;
}

/// pred-shard-worker in the same directory as this binary (falling back to
/// a bare name, i.e. PATH lookup, when argv[0] has no directory).
std::string defaultWorkerCmd(const char* argv0) {
  const std::string self(argv0 ? argv0 : "");
  const std::size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "pred-shard-worker";
  return self.substr(0, slash + 1) + "pred-shard-worker";
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen;
  std::string workerCmd;
  bool inProcess = false;
  grid::ServerConfig config;
  config.scheduler.workers = 2;
  std::size_t faultExitAfter = 0;
  bool haveFault = false;
  std::string faultPlan;

  const std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) return usage();
  try {
    const auto value = [&](std::size_t& k) -> const std::string& {
      if (k + 1 >= args.size())
        throw std::invalid_argument("flag " + args[k] + " needs a value");
      return args[++k];
    };
    for (std::size_t k = 0; k < args.size(); ++k) {
      const std::string& a = args[k];
      if (a == "--listen") {
        listen = value(k);
      } else if (a == "--worker-listen") {
        config.workerEndpoint = value(k);
      } else if (a == "--workers") {
        config.scheduler.workers = flagNumber<int>(a, value(k));
      } else if (a == "--worker-cmd") {
        workerCmd = value(k);
      } else if (a == "--in-process") {
        inProcess = true;
      } else if (a == "--cache-entries") {
        config.cacheEntries = flagNumber<std::size_t>(a, value(k));
      } else if (a == "--cache-dir") {
        config.cacheDir = value(k);
      } else if (a == "--conn-timeout-ms") {
        config.connTimeoutMs = flagNumber<std::uint64_t>(a, value(k));
      } else if (a == "--fault-plan") {
        faultPlan = value(k);
      } else if (a == "--max-attempts") {
        config.scheduler.maxAttempts = flagNumber<int>(a, value(k));
      } else if (a == "--retry-backoff-ms") {
        config.scheduler.retryBackoffMs =
            flagNumber<std::uint64_t>(a, value(k));
      } else if (a == "--shard-timeout-ms") {
        config.scheduler.shardTimeoutMs =
            flagNumber<std::uint64_t>(a, value(k));
      } else if (a == "--fault-first-worker-exit-after") {
        faultExitAfter = flagNumber<std::size_t>(a, value(k));
        haveFault = true;
      } else {
        throw std::invalid_argument("unknown flag: " + a);
      }
    }
    if (listen.empty())
      throw std::invalid_argument("--listen is required");

    config.endpoint = listen;
    if (inProcess || config.scheduler.workers == 0) {
      if (haveFault)
        throw std::invalid_argument(
            "--fault-first-worker-exit-after needs subprocess workers");
      if (inProcess) config.eval = study::gridShardEvaluator();
    } else {
      config.scheduler.workerCommand = {
          workerCmd.empty() ? defaultWorkerCmd(argv[0]) : workerCmd};
      if (haveFault)
        config.scheduler.firstWorkerExtraArgs = {
            "--exit-after", std::to_string(faultExitAfter)};
    }

    // Arm the fault plan before the server exists so construction-time
    // paths (cache.load on journal recovery) are already covered.
    if (!faultPlan.empty()) grid::fault::armPlan(faultPlan);

    grid::GridServer server(std::move(config));
    std::printf("listening on %s\n", server.boundEndpointText().c_str());
    const std::string workerEp = server.boundWorkerEndpointText();
    if (!workerEp.empty())
      std::printf("workers on %s\n", workerEp.c_str());
    std::fflush(stdout);
    server.serveForever();
    std::fprintf(stderr, "pred-grid-server: shutdown requested, exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pred-grid-server: error: %s\n", e.what());
    return 1;
  }
}
