// shard_worker.cpp — pred-shard-worker: the process-level grid shard
// executor (exp/shard.h made invocable).
//
// One binary, seven subcommands, composing into the distribution pipeline
// that scripts/shard_run.sh drives end to end:
//
//   plan    instantiate a (platform, workload) grid, partition it into K
//           rectangular shards, write one ShardSpec file per shard
//   run     evaluate ONE spec (file or stdin) and emit the shard's
//           StreamingMeasures accumulator as text on stdout (or --out);
//           --report writes the shard's RunReport telemetry alongside
//   merge   fold shard accumulators back into one (order-independent;
//           smallest-index tie-breaks) and emit the merged accumulator
//   report  fold per-shard RunReports into the fleet telemetry view
//   single  the reference: the same grid through one in-process
//           reduceCells, emitted in the same format
//   serve   persistent worker mode for the grid scheduler: speak the
//           framed protocol (grid/protocol.h) over stdin/stdout — Shard
//           frames in, ShardResult (or Error) frames out — until EOF or
//           a Shutdown frame; --exit-after N injects a deterministic
//           mid-run death for fault-tolerance smokes
//   attach  remote worker mode: DIAL a running pred-grid-server
//           ("attach tcp:HOST:PORT"), handshake with this build's
//           code-version salt, and serve ShardAssign frames until the
//           server hangs up — the same evaluation, so attached results
//           are byte-identical to serve/single
//
// Determinism contract: merge(run(shard_1), ..., run(shard_K)) is
// byte-for-byte identical to single, for any K and any shard shape —
// the shard smoke (scripts/shard_run.sh --smoke, the CI shard-smoke job,
// and the ctest subprocess smoke) diffs exactly that.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/measures.h"
#include "core/wire.h"
#include "exp/engine.h"
#include "exp/platform.h"
#include "exp/shard.h"
#include "grid/attach_worker.h"
#include "grid/protocol.h"
#include "obs/run_report.h"
#include "study/workloads.h"

namespace {

using namespace pred;

int usage() {
  std::fprintf(
      stderr,
      "pred-shard-worker — evaluate, plan, and merge Q x I grid shards\n"
      "\n"
      "  pred-shard-worker plan --platform P --workload W --shards K\n"
      "                         --out-dir DIR [--states N] [--threads T]\n"
      "                         [--interpreted]\n"
      "      partition the full P x W grid into K shard spec files\n"
      "      (DIR/shard-<k>.spec); prints one file path per line\n"
      "\n"
      "  pred-shard-worker run SPECFILE|- [--out FILE] [--report FILE]\n"
      "      evaluate one shard spec ('-' reads the spec from stdin) and\n"
      "      emit its StreamingMeasures accumulator; --report additionally\n"
      "      writes the shard's RunReport telemetry (wall time, counters,\n"
      "      phase timings, trace-cache stats) next to it — the accumulator\n"
      "      output is byte-identical either way\n"
      "\n"
      "  pred-shard-worker merge FILE...\n"
      "      merge shard accumulators (any order) into one\n"
      "\n"
      "  pred-shard-worker report FILE... [--json]\n"
      "      fold per-shard RunReports (from run --report) into the fleet\n"
      "      view — per-shard wall/cells/hit-rate rows, slowest shard, wall\n"
      "      skew — as human text (default) or JSON\n"
      "\n"
      "  pred-shard-worker single --platform P --workload W [--states N]\n"
      "                           [--threads T] [--interpreted]\n"
      "      the single-process reference for the same grid\n"
      "\n"
      "  pred-shard-worker serve [--exit-after N]\n"
      "      persistent worker for pred-grid-server: framed Shard requests\n"
      "      on stdin, ShardResult replies on stdout, until EOF/Shutdown;\n"
      "      --exit-after N dies on receiving shard N+1 (fault injection)\n"
      "\n"
      "  pred-shard-worker attach ENDPOINT [--concurrency N]\n"
      "                           [--heartbeat-ms N] [--exit-after N]\n"
      "                           [--salt S]\n"
      "      dial a running pred-grid-server (tcp:HOST:PORT or unix:PATH)\n"
      "      and serve shards remotely; --concurrency N evaluates N shards\n"
      "      at once, --exit-after N dies on assignment N+1 (fault\n"
      "      injection), --salt overrides the handshake salt (rejection\n"
      "      tests)\n");
  return 2;
}

std::string readWholeStream(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string readSpecInput(const std::string& pathOrDash) {
  if (pathOrDash == "-") return readWholeStream(std::cin);
  std::ifstream f(pathOrDash);
  if (!f) {
    throw std::invalid_argument("cannot open spec file: " + pathOrDash);
  }
  return readWholeStream(f);
}

void writeOutput(const std::string& outPath, const std::string& text) {
  if (outPath.empty()) {
    std::fputs(text.c_str(), stdout);
    return;
  }
  std::ofstream f(outPath);
  if (!(f << text) || !(f.flush())) {
    throw std::runtime_error("cannot write output file: " + outPath);
  }
}

/// Shared flag surface of the grid-defining subcommands (plan, single).
struct GridArgs {
  std::string platform;
  std::string workload;
  int states = exp::PlatformOptions{}.numStates;
  int threads = 0;
  bool interpreted = false;
  std::size_t shards = 0;   // plan only
  std::string outDir;       // plan only
};

std::string flagValue(const std::vector<std::string>& args, std::size_t& k) {
  if (k + 1 >= args.size()) {
    throw std::invalid_argument("flag " + args[k] + " needs a value");
  }
  return args[++k];
}

/// Strict numeric flag: same full-token parsing contract as the wire
/// formats ("--states 64x" is an error, not a 64).
template <typename T>
T flagNumber(const std::string& flag, const std::string& value) {
  std::istringstream in(value);
  const T v = core::wire::nextNumber<T>(in, "pred-shard-worker", flag);
  std::string extra;
  if (in >> extra) {
    core::wire::fail("pred-shard-worker",
                     "malformed " + flag + ": '" + value + "'");
  }
  return v;
}

GridArgs parseGridArgs(const std::vector<std::string>& args, bool wantPlan) {
  GridArgs g;
  for (std::size_t k = 0; k < args.size(); ++k) {
    const std::string& a = args[k];
    if (a == "--platform") {
      g.platform = flagValue(args, k);
    } else if (a == "--workload") {
      g.workload = flagValue(args, k);
    } else if (a == "--states") {
      g.states = flagNumber<int>(a, flagValue(args, k));
    } else if (a == "--threads") {
      g.threads = flagNumber<int>(a, flagValue(args, k));
    } else if (a == "--interpreted") {
      g.interpreted = true;
    } else if (wantPlan && a == "--shards") {
      g.shards = flagNumber<std::size_t>(a, flagValue(args, k));
    } else if (wantPlan && a == "--out-dir") {
      g.outDir = flagValue(args, k);
    } else {
      throw std::invalid_argument("unknown flag: " + a);
    }
  }
  if (g.platform.empty() || g.workload.empty()) {
    throw std::invalid_argument("--platform and --workload are required");
  }
  if (wantPlan && (g.shards == 0 || g.outDir.empty())) {
    throw std::invalid_argument("--shards and --out-dir are required");
  }
  return g;
}

/// The whole-grid ShardSpec of a (platform, workload) pair: full q/i
/// ranges from the instantiated axes.
exp::ShardSpec wholeGridSpec(const GridArgs& g) {
  exp::ShardSpec whole;
  whole.platform = g.platform;
  whole.workload = g.workload;
  whole.options.numStates = g.states;
  whole.engine.threads = g.threads;
  whole.engine.usePackedReplay = !g.interpreted;
  const auto w = study::WorkloadRegistry::instance().make(g.workload);
  const auto model = exp::PlatformRegistry::instance().make(
      g.platform, w.program, whole.options);
  whole.qEnd = model->numStates();
  whole.iEnd = w.inputs.size();
  return whole;
}

int cmdPlan(const std::vector<std::string>& args) {
  const GridArgs g = parseGridArgs(args, /*wantPlan=*/true);
  const auto plan = exp::planShards(wholeGridSpec(g), g.shards);
  for (std::size_t k = 0; k < plan.size(); ++k) {
    char name[32];
    std::snprintf(name, sizeof name, "shard-%03zu.spec", k);
    const std::string path = g.outDir + "/" + name;
    std::ofstream f(path);
    if (!(f << exp::serializeShardSpec(plan[k])) || !(f.flush())) {
      throw std::runtime_error("cannot write spec file: " + path);
    }
    std::printf("%s\n", path.c_str());
  }
  return 0;
}

int cmdRun(const std::vector<std::string>& args) {
  if (args.empty()) throw std::invalid_argument("run needs a spec file");
  std::string outPath;
  std::string reportPath;
  const std::string& specPath = args[0];
  for (std::size_t k = 1; k < args.size(); ++k) {
    if (args[k] == "--out") {
      if (k + 1 >= args.size()) {
        throw std::invalid_argument("--out needs a value");
      }
      outPath = args[++k];
    } else if (args[k] == "--report") {
      if (k + 1 >= args.size()) {
        throw std::invalid_argument("--report needs a value");
      }
      reportPath = args[++k];
    } else {
      throw std::invalid_argument("unknown flag: " + args[k]);
    }
  }
  const auto spec = exp::parseShardSpec(readSpecInput(specPath));
  const auto w = study::WorkloadRegistry::instance().make(spec.workload);
  obs::RunReport report;
  const auto acc = exp::evaluateShard(
      spec, w.program, w.inputs, exp::PlatformRegistry::instance(),
      reportPath.empty() ? nullptr : &report);
  // Accumulator first: the smoke's byte-identity diff must not depend on
  // whether telemetry was requested.
  writeOutput(outPath, acc.serialize());
  if (!reportPath.empty()) {
    std::ofstream f(reportPath);
    if (!(f << report.serialize()) || !(f.flush())) {
      throw std::runtime_error("cannot write report file: " + reportPath);
    }
  }
  return 0;
}

int cmdReport(const std::vector<std::string>& args) {
  bool json = false;
  std::vector<obs::RunReport> parts;
  for (const auto& a : args) {
    if (a == "--json") {
      json = true;
      continue;
    }
    std::ifstream f(a);
    if (!f) throw std::invalid_argument("cannot open report file: " + a);
    parts.push_back(obs::RunReport::deserialize(readWholeStream(f)));
  }
  if (parts.empty()) {
    throw std::invalid_argument("report needs at least one report file");
  }
  const auto fleet = obs::mergeFleet(parts);
  std::fputs((json ? fleet.json() + "\n" : fleet.text()).c_str(), stdout);
  return 0;
}

int cmdMerge(const std::vector<std::string>& args) {
  if (args.empty()) {
    throw std::invalid_argument("merge needs at least one accumulator file");
  }
  std::vector<core::StreamingMeasures> parts;
  parts.reserve(args.size());
  for (const auto& path : args) {
    std::ifstream f(path);
    if (!f) {
      throw std::invalid_argument("cannot open accumulator file: " + path);
    }
    parts.push_back(core::StreamingMeasures::deserialize(readWholeStream(f)));
  }
  const auto merged = exp::ExperimentEngine::mergeShards(std::move(parts));
  std::fputs(merged.serialize().c_str(), stdout);
  return 0;
}

int cmdSingle(const std::vector<std::string>& args) {
  const GridArgs g = parseGridArgs(args, /*wantPlan=*/false);
  const auto w = study::WorkloadRegistry::instance().make(g.workload);
  exp::PlatformOptions options;
  options.numStates = g.states;
  const auto model = exp::PlatformRegistry::instance().make(
      g.platform, w.program, options);
  exp::EngineConfig cfg;
  cfg.threads = g.threads;
  cfg.usePackedReplay = !g.interpreted;
  exp::ExperimentEngine engine(cfg);
  const auto acc = engine.reduceCells(*model, w.program, w.inputs);
  std::fputs(acc.serialize().c_str(), stdout);
  return 0;
}

int cmdServe(const std::vector<std::string>& args) {
  bool haveExitAfter = false;
  std::size_t exitAfter = 0;
  for (std::size_t k = 0; k < args.size(); ++k) {
    if (args[k] == "--exit-after") {
      exitAfter = flagNumber<std::size_t>(args[k], flagValue(args, k));
      haveExitAfter = true;
    } else {
      throw std::invalid_argument("unknown flag: " + args[k]);
    }
  }
  std::size_t served = 0;
  grid::Frame frame;
  for (;;) {
    if (!grid::readFrame(STDIN_FILENO, frame)) return 0;  // scheduler EOF
    if (frame.type == grid::FrameType::Shutdown) return 0;
    if (frame.type != grid::FrameType::Shard) {
      grid::writeFrame(STDOUT_FILENO,
                       grid::Frame{grid::FrameType::Error,
                                   "serve expects Shard frames"});
      continue;
    }
    // Fault injection: die on RECEIPT of shard exitAfter+1 — after the
    // scheduler committed the dispatch, before any reply — the orphaned-
    // shard shape the retry path must survive.
    if (haveExitAfter && served >= exitAfter) ::_exit(3);
    try {
      const auto spec = exp::parseShardSpec(frame.payload);
      const auto w = study::WorkloadRegistry::instance().make(spec.workload);
      obs::RunReport report;
      const auto acc = exp::evaluateShard(
          spec, w.program, w.inputs, exp::PlatformRegistry::instance(),
          &report);
      grid::ShardResultMsg msg{acc.serialize(), report.serialize()};
      grid::writeFrame(
          STDOUT_FILENO,
          grid::Frame{grid::FrameType::ShardResult,
                      grid::encodeShardResultMsg(msg)});
      ++served;
    } catch (const std::exception& e) {
      // Evaluation/parse failure: this worker is still healthy — report
      // the attempt failed and keep serving.
      grid::writeFrame(STDOUT_FILENO,
                       grid::Frame{grid::FrameType::Error, e.what()});
    }
  }
}

int cmdAttach(const std::vector<std::string>& args) {
  if (args.empty() || args[0].empty() || args[0][0] == '-') {
    throw std::invalid_argument("attach needs an ENDPOINT first");
  }
  const std::string& endpoint = args[0];
  grid::AttachOptions options;
  for (std::size_t k = 1; k < args.size(); ++k) {
    if (args[k] == "--concurrency") {
      options.concurrency =
          flagNumber<std::size_t>(args[k], flagValue(args, k));
    } else if (args[k] == "--heartbeat-ms") {
      options.heartbeatMs =
          flagNumber<std::uint64_t>(args[k], flagValue(args, k));
    } else if (args[k] == "--exit-after") {
      options.exitAfter =
          flagNumber<std::size_t>(args[k], flagValue(args, k));
      options.haveExitAfter = true;
    } else if (args[k] == "--salt") {
      options.salt = flagValue(args, k);
    } else {
      throw std::invalid_argument("unknown flag: " + args[k]);
    }
  }
  // The same evaluation serve-mode runs — byte-identity across modes
  // hinges on attached workers computing shards EXACTLY the same way.
  return grid::runAttachWorker(
      endpoint, [](const exp::ShardSpec& spec) {
        const auto w =
            study::WorkloadRegistry::instance().make(spec.workload);
        obs::RunReport report;
        auto acc = exp::evaluateShard(spec, w.program, w.inputs,
                                      exp::PlatformRegistry::instance(),
                                      &report);
        return grid::ShardOutput{std::move(acc), std::move(report)};
      },
      options);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "plan") return cmdPlan(args);
    if (cmd == "run") return cmdRun(args);
    if (cmd == "merge") return cmdMerge(args);
    if (cmd == "report") return cmdReport(args);
    if (cmd == "single") return cmdSingle(args);
    if (cmd == "serve") return cmdServe(args);
    if (cmd == "attach") return cmdAttach(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pred-shard-worker %s: error: %s\n", cmd.c_str(),
                 e.what());
    return 1;
  }
}
