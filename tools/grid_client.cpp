// grid_client.cpp — pred-grid-client: the thin client for pred-grid-server.
//
// Three subcommands over grid::GridClient (src/grid/client.h):
//
//   submit    build the whole-grid ShardSpec of a (platform, workload)
//             pair — the same instantiation pred-shard-worker uses — ship
//             it, and print the merged accumulator bytes on stdout (or
//             --out).  stdout carries ONLY the accumulator, so smokes can
//             diff it byte-for-byte against `pred-shard-worker single`;
//             provenance (fingerprint, cache-hit flag) goes to stderr.
//   stats     fetch and print the server's RunReport (text or --json)
//   shutdown  stop the server's accept loop
//
// All subcommands take --timeout SECS (default 300, 0 = wait forever)
// bounding the connect and every frame read/write, so a wedged or
// black-holed server cannot hang a pipeline.
//
// Exit codes: 0 success; 1 any server/connection error (server-side
// Error frame, refused connect, malformed reply); 2 usage; 3 deadline
// exceeded — scripts can tell "the server said no" from "the server
// never answered".

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/wire.h"
#include "exp/platform.h"
#include "exp/shard.h"
#include "grid/client.h"
#include "study/workloads.h"

namespace {

using namespace pred;

int usage() {
  std::fprintf(
      stderr,
      "pred-grid-client — submit predictability grid jobs to a server\n"
      "\n"
      "  pred-grid-client submit --connect EP --platform P --workload W\n"
      "                          [--states N] [--shards K] [--threads T]\n"
      "                          [--interpreted] [--no-cache] [--out FILE]\n"
      "                          [--timeout SECS]\n"
      "      evaluate the whole P x W grid on the server, split K ways\n"
      "      (default 1); accumulator bytes on stdout/--out, fingerprint\n"
      "      and cache-hit provenance on stderr\n"
      "\n"
      "  pred-grid-client stats --connect EP [--json] [--timeout SECS]\n"
      "      the server's telemetry report (grid.* counters, last fleet)\n"
      "\n"
      "  pred-grid-client shutdown --connect EP [--timeout SECS]\n"
      "      stop the server\n"
      "\n"
      "EP is unix:PATH or tcp:HOST:PORT.  --timeout SECS (default 300,\n"
      "0 = wait forever) bounds the connect and each frame exchange; a\n"
      "deadline exceeded exits 3 (1 = server/connection error, 2 = usage).\n");
  return 2;
}

std::string flagValue(const std::vector<std::string>& args, std::size_t& k) {
  if (k + 1 >= args.size())
    throw std::invalid_argument("flag " + args[k] + " needs a value");
  return args[++k];
}

template <typename T>
T flagNumber(const std::string& flag, const std::string& value) {
  std::istringstream in(value);
  const T v = core::wire::nextNumber<T>(in, "pred-grid-client", flag);
  std::string extra;
  if (in >> extra) {
    core::wire::fail("pred-grid-client",
                     "malformed " + flag + ": '" + value + "'");
  }
  return v;
}

/// Default deadline: generous enough for a real grid evaluation, finite
/// enough that a wedged server can't hang a pipeline forever.
constexpr std::uint64_t kDefaultTimeoutSecs = 300;

grid::ClientOptions clientOptions(std::uint64_t timeoutSecs) {
  grid::ClientOptions opts;
  if (timeoutSecs > 0) {
    const std::uint64_t capped = std::min<std::uint64_t>(
        timeoutSecs, 86'400);  // a day: beyond that, just say 0
    opts.connectTimeoutMs = static_cast<int>(capped * 1000);
    opts.ioTimeoutMs = static_cast<int>(capped * 1000);
  }
  return opts;
}

int cmdSubmit(const std::vector<std::string>& args) {
  std::string connect, platform, workload, outPath;
  int states = exp::PlatformOptions{}.numStates;
  int threads = 0;
  bool interpreted = false;
  std::size_t shards = 1;
  bool useCache = true;
  std::uint64_t timeoutSecs = kDefaultTimeoutSecs;
  for (std::size_t k = 0; k < args.size(); ++k) {
    const std::string& a = args[k];
    if (a == "--connect") {
      connect = flagValue(args, k);
    } else if (a == "--platform") {
      platform = flagValue(args, k);
    } else if (a == "--workload") {
      workload = flagValue(args, k);
    } else if (a == "--states") {
      states = flagNumber<int>(a, flagValue(args, k));
    } else if (a == "--shards") {
      shards = flagNumber<std::size_t>(a, flagValue(args, k));
    } else if (a == "--threads") {
      threads = flagNumber<int>(a, flagValue(args, k));
    } else if (a == "--interpreted") {
      interpreted = true;
    } else if (a == "--no-cache") {
      useCache = false;
    } else if (a == "--out") {
      outPath = flagValue(args, k);
    } else if (a == "--timeout") {
      timeoutSecs = flagNumber<std::uint64_t>(a, flagValue(args, k));
    } else {
      throw std::invalid_argument("unknown flag: " + a);
    }
  }
  if (connect.empty() || platform.empty() || workload.empty())
    throw std::invalid_argument(
        "--connect, --platform, and --workload are required");

  // The same whole-grid instantiation the worker binary performs: |Q| from
  // the model preset, |I| from the workload.
  exp::ShardSpec whole;
  whole.platform = platform;
  whole.workload = workload;
  whole.options.numStates = states;
  whole.engine.threads = threads;
  whole.engine.usePackedReplay = !interpreted;
  const auto w = study::WorkloadRegistry::instance().make(workload);
  const auto model =
      exp::PlatformRegistry::instance().make(platform, w.program,
                                             whole.options);
  whole.qEnd = model->numStates();
  whole.iEnd = w.inputs.size();

  grid::GridClient client(connect, clientOptions(timeoutSecs));
  const grid::JobResult result = client.submit(whole, shards, useCache);
  std::fprintf(stderr, "fingerprint %s\ncache-hit %d\n",
               result.fingerprint.c_str(), result.cacheHit ? 1 : 0);
  if (outPath.empty()) {
    std::fputs(result.accumulatorText.c_str(), stdout);
  } else {
    std::ofstream f(outPath);
    if (!(f << result.accumulatorText) || !(f.flush()))
      throw std::runtime_error("cannot write output file: " + outPath);
  }
  return 0;
}

int cmdStats(const std::vector<std::string>& args) {
  std::string connect;
  bool json = false;
  std::uint64_t timeoutSecs = kDefaultTimeoutSecs;
  for (std::size_t k = 0; k < args.size(); ++k) {
    if (args[k] == "--connect") {
      connect = flagValue(args, k);
    } else if (args[k] == "--json") {
      json = true;
    } else if (args[k] == "--timeout") {
      timeoutSecs = flagNumber<std::uint64_t>(args[k], flagValue(args, k));
    } else {
      throw std::invalid_argument("unknown flag: " + args[k]);
    }
  }
  if (connect.empty()) throw std::invalid_argument("--connect is required");
  grid::GridClient client(connect, clientOptions(timeoutSecs));
  const obs::RunReport report = client.stats();
  std::fputs((json ? report.json() + "\n" : report.text()).c_str(), stdout);
  return 0;
}

int cmdShutdown(const std::vector<std::string>& args) {
  std::string connect;
  std::uint64_t timeoutSecs = kDefaultTimeoutSecs;
  for (std::size_t k = 0; k < args.size(); ++k) {
    if (args[k] == "--connect") {
      connect = flagValue(args, k);
    } else if (args[k] == "--timeout") {
      timeoutSecs = flagNumber<std::uint64_t>(args[k], flagValue(args, k));
    } else {
      throw std::invalid_argument("unknown flag: " + args[k]);
    }
  }
  if (connect.empty()) throw std::invalid_argument("--connect is required");
  grid::GridClient client(connect, clientOptions(timeoutSecs));
  client.shutdownServer();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "submit") return cmdSubmit(args);
    if (cmd == "stats") return cmdStats(args);
    if (cmd == "shutdown") return cmdShutdown(args);
    return usage();
  } catch (const pred::grid::net::TimeoutError& e) {
    // A distinct exit code for "the server never answered in time" so
    // scripts can retry/escalate differently from a hard error.
    std::fprintf(stderr, "pred-grid-client %s: timeout: %s\n", cmd.c_str(),
                 e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pred-grid-client %s: error: %s\n", cmd.c_str(),
                 e.what());
    return 1;
  }
}
